// The typecheck service's transport-independent core (docs/SERVING.md):
// one request payload in, one response payload out. Everything the daemon
// promises lives here, where tests can drive it deterministically without
// sockets:
//
//   * tiered trust-boundary validation (src/serve/validity.h) between
//     protocol decoding and dispatch — malformed or oversized inputs are
//     rejected with structured errors before touching an automata op;
//   * admission control (src/serve/admission.h) — heavy requests acquire an
//     in-flight slot or are shed with WireStatus::kOverloaded;
//   * per-request execution control — every typecheck/infer/validate runs
//     under a TaOpContext deadline (client-requested, server-clamped) with
//     cooperative cancellation wired to the transport's disconnect signal;
//   * graceful degradation over the wire — a typecheck that exhausts its
//     budgets returns verdict kUnknown *plus* the structured
//     ExhaustionReport as an OK response, never a dropped connection;
//   * deterministic fault injection — a test can arm a TaFaultInjector for
//     the next heavy request and assert the failure stays contained to that
//     one response while the server keeps serving (the soak in
//     tests/serve_soak_test.cc sweeps every checkpoint ordinal this way).

#ifndef PEBBLETC_SERVE_SERVER_H_
#define PEBBLETC_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "src/core/typechecker.h"
#include "src/serve/admission.h"
#include "src/serve/protocol.h"
#include "src/serve/registry.h"
#include "src/serve/validate.h"
#include "src/serve/validity.h"
#include "src/ta/op_context.h"

namespace pebbletc::serve {

struct ServeOptions {
  /// Trust-boundary tier and caps (see src/serve/validity.h).
  ValidityOptions validity;
  /// Frame/field byte ceiling for both directions. Configurable per
  /// deployment, but only inside [kMinFrameBytes, kMaxFrameBytesCeiling] —
  /// ValidateServeOptions (below) rejects values outside that window rather
  /// than silently clamping; call it before constructing a server from
  /// untrusted configuration.
  uint32_t max_frame_bytes = kMaxFrameBytes;
  /// Admission control: concurrent heavy requests / bounded wait queue /
  /// how long an admitted waiter may wait for a slot before being shed.
  uint32_t max_in_flight = 4;
  uint32_t max_queued = 8;
  std::chrono::milliseconds admission_wait{100};
  /// Deadline applied when a request does not ask for one; requests are
  /// always clamped to validity.max_deadline_ms.
  uint32_t default_deadline_ms = 2000;
  /// Budgets forwarded into TypecheckOptions.
  size_t max_det_states = 200000;
  size_t max_antichain_pairs = 200000;
  /// Which inclusion engine typecheck requests run (docs/INCLUSION.md):
  /// kExplicit keeps the legacy determinize+complement pipeline; kAntichain
  /// forces the on-the-fly check; kAuto picks the antichain path when the
  /// output type is bottom-up deterministic (DTD-shaped schemas).
  TaInclusionPath inclusion = TaInclusionPath::kExplicit;
  /// Worker threads per request (1 = serial; the daemon's concurrency comes
  /// from serving requests in parallel, not from intra-request forking).
  uint32_t num_threads = 1;
  /// Op-cache mode for request contexts (docs/CACHING.md). kInMemory is the
  /// serving default: repeated requests against the same artifacts hit the
  /// structural cache. Automatically bypassed for fault-armed requests.
  TaMemoMode memo = TaMemoMode::kInMemory;
  /// Whether the kLoadArtifact wire op may install artifacts at runtime.
  bool allow_load = true;
};

class ServerCore {
 public:
  explicit ServerCore(ServeOptions options);

  ArtifactRegistry& registry() { return registry_; }
  AdmissionController& admission() { return admission_; }
  const ServeOptions& options() const { return options_; }

  /// Processes one request payload (no transport frame) and returns the
  /// encoded response payload. Never throws, never crashes on arbitrary
  /// bytes; every failure mode is a structured response. `cancel`, when
  /// non-null, is polled at every automata-op checkpoint — the transport
  /// sets it when the client disconnects mid-request.
  std::string HandleFrame(std::string_view payload,
                          const std::atomic<bool>* cancel = nullptr);

  /// Decoded-domain variant of HandleFrame (used by tests that want to
  /// inspect responses without re-parsing).
  Response Handle(const Request& request,
                  const std::atomic<bool>* cancel = nullptr);

  /// Test hook: the next admitted typecheck / infer / validate request runs
  /// with `injector` installed on its context (forcing the serial,
  /// memo-cold path, so checkpoint ordinals are deterministic). The pointer
  /// must outlive that request; it is consumed atomically by exactly one.
  void ArmFaultForNextRequest(TaFaultInjector* injector);

  /// Counter snapshot (also served as the kStats wire op).
  StatsResponse SnapshotStats() const;

 private:
  Response Dispatch(const Request& request, const std::atomic<bool>* cancel);
  Response DoValidate(const RequestHeader& header, const ValidateRequest& req,
                      const std::atomic<bool>* cancel);
  Response DoValidateBatch(const RequestHeader& header,
                           const ValidateBatchRequest& req,
                           const std::atomic<bool>* cancel);
  /// Resolves `name` to a compiled ValidationPlan, serving repeat requests
  /// from the per-artifact plan cache. A cached plan is invalidated by
  /// pointer identity against the current registry snapshot, so hot-swapping
  /// an artifact recompiles on the next request. `bypass_cache` (used for
  /// fault-armed requests) compiles fresh and caches nothing, keeping
  /// checkpoint ordinals deterministic.
  Result<std::shared_ptr<const ValidationPlan>> PlanFor(
      const std::string& name, TaOpContext* ctx, bool bypass_cache);
  Response DoTypecheck(const RequestHeader& header, const TypecheckRequest& req,
                       const std::atomic<bool>* cancel);
  Response DoInferInverse(const RequestHeader& header,
                          const InferInverseRequest& req,
                          const std::atomic<bool>* cancel);
  Response DoLoadArtifact(const RequestHeader& header,
                          const LoadArtifactRequest& req);

  ServeOptions options_;
  ArtifactRegistry registry_;
  AdmissionController admission_;
  std::atomic<TaFaultInjector*> armed_fault_{nullptr};

  /// Validation plan cache (docs/VALIDATION.md): one compiled plan per
  /// artifact name, keyed to the registry snapshot it was built from.
  struct CachedPlan {
    std::shared_ptr<const RegistryEntry> source;
    std::shared_ptr<const ValidationPlan> plan;
  };
  mutable std::mutex plan_mu_;
  std::map<std::string, CachedPlan> plans_;

  std::atomic<uint64_t> requests_total_{0};
  std::atomic<uint64_t> responses_ok_{0};
  std::atomic<uint64_t> malformed_rejected_{0};
  std::atomic<uint64_t> validation_rejected_{0};
  std::atomic<uint64_t> overload_rejected_{0};
  std::atomic<uint64_t> degraded_verdicts_{0};
  std::atomic<uint64_t> hard_errors_{0};
  std::atomic<uint64_t> faults_injected_{0};
};

/// Maps a core Status to the wire status used when that Status aborts a
/// request (exposed for tests).
WireStatus WireStatusOf(const Status& status);

/// Rejects structurally invalid serve configuration before a server is
/// built from it: a frame cap of zero, below kMinFrameBytes, or above
/// kMaxFrameBytesCeiling is a configuration error, not something to clamp
/// silently (the operator asked for a specific policy and should learn it
/// is unsupported).
Status ValidateServeOptions(const ServeOptions& options);

}  // namespace pebbletc::serve

#endif  // PEBBLETC_SERVE_SERVER_H_
