#include "src/serve/registry.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/common/status.h"

namespace pebbletc::serve {
namespace {

namespace fs = std::filesystem;

Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path.string() + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

const char* RegistryKindName(RegistryEntry::Kind kind) {
  switch (kind) {
    case RegistryEntry::Kind::kDtd: return "dtd";
    case RegistryEntry::Kind::kSchema: return "schema";
    case RegistryEntry::Kind::kTransducer: return "transducer";
    case RegistryEntry::Kind::kXslt: return "xslt";
  }
  return "unknown";
}

void ArtifactRegistry::Put(std::string_view name, RegistryEntry entry) {
  auto shared = std::make_shared<const RegistryEntry>(std::move(entry));
  std::lock_guard<std::mutex> lock(mu_);
  entries_[std::string(name)] = std::move(shared);
}

std::shared_ptr<const RegistryEntry> ArtifactRegistry::Get(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second;
}

Result<RegistryEntry::Kind> ArtifactRegistry::PutWrapped(
    std::string_view name, std::string_view container_bytes) {
  PEBBLETC_ASSIGN_OR_RETURN(TaArtifactView view,
                            UnwrapTaArtifact(container_bytes));
  RegistryEntry entry;
  switch (view.kind) {
    case TaArtifactKind::kDtd: {
      PEBBLETC_ASSIGN_OR_RETURN(SpecializedDtd dtd,
                                DeserializeDtdArtifact(view.payload));
      entry.kind = RegistryEntry::Kind::kDtd;
      entry.dtd = std::make_shared<const SpecializedDtd>(std::move(dtd));
      break;
    }
    case TaArtifactKind::kSchema: {
      PEBBLETC_ASSIGN_OR_RETURN(SchemaArtifact schema,
                                DeserializeSchemaArtifact(view.payload));
      entry.kind = RegistryEntry::Kind::kSchema;
      entry.schema =
          std::make_shared<const SchemaArtifact>(std::move(schema));
      break;
    }
    case TaArtifactKind::kTransducer: {
      PEBBLETC_ASSIGN_OR_RETURN(TransducerArtifact transducer,
                                DeserializeTransducerArtifact(view.payload));
      entry.kind = RegistryEntry::Kind::kTransducer;
      entry.transducer =
          std::make_shared<const TransducerArtifact>(std::move(transducer));
      break;
    }
    case TaArtifactKind::kNbta:
    case TaArtifactKind::kDbta:
      return Status::FailedPrecondition(
          "bare automaton artifacts (kNbta/kDbta) carry no alphabet and "
          "cannot serve requests; wrap them as a schema artifact");
  }
  const RegistryEntry::Kind kind = entry.kind;
  Put(name, std::move(entry));
  return kind;
}

Status ArtifactRegistry::PutXsltText(std::string_view name,
                                     std::string_view text) {
  auto source = std::make_shared<RegistryEntry::XsltSource>();
  Result<XsltProgram> program =
      ParseXslt(text, &source->head_tags, &source->literal_tags);
  if (!program.ok()) {
    return Status::ParseError("XSLT artifact '" + std::string(name) +
                              "': " + program.status().ToString());
  }
  source->program = std::move(program).value();
  RegistryEntry entry;
  entry.kind = RegistryEntry::Kind::kXslt;
  entry.xslt = std::move(source);
  Put(name, std::move(entry));
  return Status::OK();
}

Status ArtifactRegistry::PutDtdText(std::string_view name,
                                    std::string_view text) {
  Result<SpecializedDtd> dtd = ParseSpecializedDtd(text);
  if (!dtd.ok()) {
    return Status::ParseError("DTD artifact '" + std::string(name) +
                              "': " + dtd.status().ToString());
  }
  RegistryEntry entry;
  entry.kind = RegistryEntry::Kind::kDtd;
  entry.dtd =
      std::make_shared<const SpecializedDtd>(std::move(dtd).value());
  Put(name, std::move(entry));
  return Status::OK();
}

Result<size_t> ArtifactRegistry::LoadDirectory(const std::string& dir) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::NotFound("cannot read artifact directory '" + dir +
                            "': " + ec.message());
  }
  size_t installed = 0;
  for (const fs::directory_entry& file : it) {
    if (!file.is_regular_file()) continue;
    const fs::path& path = file.path();
    const std::string ext = path.extension().string();
    const std::string name = path.stem().string();
    if (ext != ".dtd" && ext != ".xslt" && ext != ".ptar") continue;
    PEBBLETC_ASSIGN_OR_RETURN(std::string contents, ReadFile(path));
    if (ext == ".dtd") {
      PEBBLETC_RETURN_IF_ERROR(PutDtdText(name, contents));
    } else if (ext == ".xslt") {
      PEBBLETC_RETURN_IF_ERROR(PutXsltText(name, contents));
    } else {
      Result<RegistryEntry::Kind> kind = PutWrapped(name, contents);
      if (!kind.ok()) {
        return Status::ParseError("artifact file '" + path.string() +
                                  "': " + kind.status().ToString());
      }
    }
    ++installed;
  }
  return installed;
}

std::vector<std::pair<std::string, RegistryEntry::Kind>>
ArtifactRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, RegistryEntry::Kind>> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.emplace_back(name, entry->kind);
  }
  return out;  // std::map iteration is already name-sorted
}

size_t ArtifactRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

Result<RankedEncodingView> EncodedViewOfRanked(const RankedAlphabet& ranked) {
  RankedEncodingView view;
  view.enc.ranked = ranked;
  view.enc.cons = kNoSymbol;
  view.enc.nil = kNoSymbol;
  for (SymbolId s = 0; s < ranked.size(); ++s) {
    const std::string& name = ranked.Name(s);
    if (name == "-" && ranked.Rank(s) == 2) {
      view.enc.cons = s;
    } else if (name == "|" && ranked.Rank(s) == 0) {
      view.enc.nil = s;
    } else {
      // Tag ids are assigned in ranked-id order, matching how
      // MakeEncodedAlphabet walked the original unranked table.
      const SymbolId tag = view.tags.Intern(name);
      view.enc.tag_symbol.resize(tag + 1, kNoSymbol);
      view.enc.tag_symbol[tag] = s;
    }
  }
  if (view.enc.cons == kNoSymbol || view.enc.nil == kNoSymbol) {
    return Status::FailedPrecondition(
        "alphabet lacks the '-'/'|' encoding symbols; this artifact was not "
        "built over an encoded alphabet and cannot process XML documents");
  }
  return view;
}

}  // namespace pebbletc::serve
