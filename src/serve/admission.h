// Admission control and overload shedding for the typecheck service
// (docs/SERVING.md). A fixed pool of in-flight slots plus a bounded wait
// queue: requests beyond the pool wait up to a configurable grace period,
// and anything beyond pool + queue is rejected *immediately* with
// kResourceExhausted (surfaced to clients as WireStatus::kOverloaded) so
// callers learn to back off instead of piling onto a melting server. The
// two failure modes this design forbids: queue-forever (every admitted
// waiter has a bounded wait) and connection reset (rejection is a
// structured response, produced by the dispatch layer).

#ifndef PEBBLETC_SERVE_ADMISSION_H_
#define PEBBLETC_SERVE_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "src/common/result.h"

namespace pebbletc::serve {

class AdmissionController {
 public:
  /// `max_in_flight` slots execute concurrently; up to `max_queued` more
  /// may wait for a slot. Both must be >= 1 (0 is clamped to 1).
  AdmissionController(uint32_t max_in_flight, uint32_t max_queued);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII in-flight slot; releases (and wakes one waiter) on destruction.
  class Slot {
   public:
    Slot() = default;
    Slot(Slot&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Slot& operator=(Slot&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    ~Slot() { Release(); }

    bool held() const { return controller_ != nullptr; }
    void Release();

   private:
    friend class AdmissionController;
    explicit Slot(AdmissionController* controller) : controller_(controller) {}
    AdmissionController* controller_ = nullptr;
  };

  /// Acquires a slot, waiting up to `max_wait` if the pool is full. Fails
  /// with kResourceExhausted when the wait queue is itself full (instant
  /// shed, no waiting) or when the grace period expires with the pool still
  /// saturated.
  Result<Slot> Admit(std::chrono::milliseconds max_wait);

  /// Gauges and counters (for the kStats wire op and the soak's
  /// leaked-slot assertion).
  uint32_t in_flight() const;
  uint32_t queued() const;
  uint64_t total_admitted() const;
  uint64_t total_rejected() const;

 private:
  void Release();

  const uint32_t max_in_flight_;
  const uint32_t max_queued_;
  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  uint32_t in_flight_ = 0;
  uint32_t queued_ = 0;
  uint64_t total_admitted_ = 0;
  uint64_t total_rejected_ = 0;
};

}  // namespace pebbletc::serve

#endif  // PEBBLETC_SERVE_ADMISSION_H_
