// The typecheck service's length-prefixed wire protocol (docs/SERVING.md).
//
// Transport framing: each message is a little-endian u32 byte count followed
// by that many payload bytes. The length is validated against a configurable
// cap *before* any allocation, so an adversarial prefix cannot make the
// server reserve gigabytes. `FrameDecoder` performs the incremental version
// of the same parse for stream transports.
//
// Payload framing: u8 protocol version, u8 opcode, u32 request id, u32
// requested deadline (ms, 0 = server default), then an opcode-specific body.
// Responses echo the opcode and request id and always carry a WireStatus
// plus a human-readable detail string — every failure mode, including
// malformed bytes, oversized frames, admission rejection, and mid-request
// fault injection, surfaces as a structured response, never a dropped
// connection (the serving layer's core robustness contract).
//
// All decoding here is pure parsing with range checks; semantic validation
// (names, sizes, artifact payloads) is the next tier up, in
// src/serve/validity.h.

#ifndef PEBBLETC_SERVE_PROTOCOL_H_
#define PEBBLETC_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/common/result.h"

namespace pebbletc::serve {

/// Protocol version spoken by this build.
inline constexpr uint8_t kWireVersion = 1;

/// Default frame cap — the value ServeOptions::max_frame_bytes starts at.
/// 4 MiB comfortably fits every artifact in the repo while bounding
/// per-connection memory. Deployments may configure a different cap, but only
/// inside [kMinFrameBytes, kMaxFrameBytesCeiling]; ValidateServeOptions
/// (src/serve/server.h) rejects anything outside that window rather than
/// silently clamping.
inline constexpr uint32_t kMaxFrameBytes = 4u << 20;

/// Smallest admissible frame cap: a cap below this cannot carry even a
/// request header plus a minimal body, so it is a configuration error.
inline constexpr uint32_t kMinFrameBytes = 64;

/// Absolute ceiling on any configured frame cap. Bounds the worst-case
/// per-connection buffer a misconfigured deployment can expose.
inline constexpr uint32_t kMaxFrameBytesCeiling = 64u << 20;

/// Request opcodes. Wire-stable values — do not renumber.
enum class Opcode : uint8_t {
  kPing = 0,
  kValidate = 1,       ///< validate an XML document against a named schema
  kTypecheck = 2,      ///< T(τ1) ⊆ τ2 for named transducer + DTDs
  kInferInverse = 3,   ///< inverse type inference for a named transducer
  kLoadArtifact = 4,   ///< install a wrapped artifact into the registry
  kListArtifacts = 5,  ///< enumerate registry contents
  kStats = 6,          ///< server counters
  kValidateBatch = 7,  ///< validate N documents against one named schema
};
inline constexpr uint8_t kMaxOpcode = 7;

/// Structured response status. Wire-stable values — do not renumber.
enum class WireStatus : uint8_t {
  kOk = 0,
  kMalformedFrame = 1,     ///< bytes failed protocol-level decoding
  kUnsupportedVersion = 2,
  kUnknownOpcode = 3,
  kValidationFailed = 4,   ///< rejected by the validity tier (src/serve/validity.h)
  kNotFound = 5,           ///< named artifact absent from the registry
  kAlreadyExists = 6,
  kOverloaded = 7,         ///< admission control shed the request — back off
  kDeadlineExceeded = 8,
  kCancelled = 9,
  kResourceExhausted = 10,
  kFailedPrecondition = 11,  ///< e.g. artifact kinds that cannot be combined
  kInternal = 12,
  kInvalidArgument = 13,
};

const char* WireStatusName(WireStatus s);

struct RequestHeader {
  uint8_t version = kWireVersion;
  Opcode opcode = Opcode::kPing;
  uint32_t request_id = 0;
  /// Client-requested deadline in milliseconds; 0 means "server default".
  /// The server clamps to its configured maximum either way.
  uint32_t deadline_ms = 0;
};

struct PingRequest {};
struct ValidateRequest {
  std::string schema;    ///< registry name of a DTD or schema artifact
  std::string document;  ///< XML text
};
struct TypecheckRequest {
  std::string transducer;   ///< registry name of an XSLT or transducer artifact
  std::string input_type;   ///< registry name of the τ1 DTD
  std::string output_type;  ///< registry name of the τ2 DTD
};
struct InferInverseRequest {
  std::string transducer;
  std::string output_type;
};
struct LoadArtifactRequest {
  std::string name;
  std::string artifact;  ///< WrapTaArtifact container bytes
};
struct ListArtifactsRequest {};
struct StatsRequest {};
/// N documents against one artifact, in one frame and one admission slot.
/// The batch shares the request deadline: documents not yet validated when
/// it expires report kDeadlineExceeded individually.
struct ValidateBatchRequest {
  std::string schema;  ///< registry name of a DTD or schema artifact
  std::vector<std::string> documents;  ///< XML texts, validated in order
};

struct Request {
  RequestHeader header;
  std::variant<PingRequest, ValidateRequest, TypecheckRequest,
               InferInverseRequest, LoadArtifactRequest, ListArtifactsRequest,
               StatsRequest, ValidateBatchRequest>
      body;
};

struct ResponseHeader {
  uint8_t version = kWireVersion;
  Opcode opcode = Opcode::kPing;
  uint32_t request_id = 0;
  WireStatus status = WireStatus::kOk;
  /// Human-readable diagnostic; non-empty exactly when status != kOk (and
  /// for degraded-but-ok verdicts, where it carries the exhaustion note).
  std::string detail;
};

struct PingResponse {};
struct ValidateResponse {
  bool valid = false;
  std::string diagnostic;  ///< offending element, for invalid documents
};
struct TypecheckResponse {
  /// 0 = typechecks, 1 = counterexample, 2 = unknown (degraded). A degraded
  /// verdict is an OK *response*: the request completed, the answer is
  /// honestly inconclusive, and the exhaustion fields say why.
  uint8_t verdict = 2;
  std::string method;
  bool exhausted = false;
  uint8_t exhaustion_code = 0;  ///< StatusCode of the first budget hit
  std::string exhaustion_pass;
  std::string exhaustion_detail;
  uint64_t checkpoints = 0;
  uint64_t states_materialized = 0;
  std::string counterexample_input_xml;   ///< empty unless verdict == 1
  std::string counterexample_output_xml;  ///< may be empty even on verdict 1
};
struct InferInverseResponse {
  uint32_t num_states = 0;
  uint32_t num_leaf_rules = 0;
  uint32_t num_rules = 0;
  uint64_t checkpoints = 0;
};
struct LoadArtifactResponse {
  uint8_t kind = 0;  ///< TaArtifactKind of the installed artifact
};
struct ArtifactInfo {
  std::string name;
  uint8_t kind = 0;
};
struct ListArtifactsResponse {
  std::vector<ArtifactInfo> artifacts;
};
struct StatsResponse {
  uint64_t requests_total = 0;
  uint64_t responses_ok = 0;
  uint64_t malformed_rejected = 0;
  uint64_t validation_rejected = 0;
  uint64_t overload_rejected = 0;
  uint64_t degraded_verdicts = 0;
  uint64_t hard_errors = 0;
  uint64_t faults_injected = 0;
  uint32_t in_flight = 0;
};

/// Per-document verdict inside a batch response. `status` is a WireStatus
/// byte: kOk means validation completed (`valid` is the answer); anything
/// else means this document's validation failed — malformed XML
/// (kInvalidArgument, as in the single-document opcode), deadline,
/// cancellation — without failing the rest of the batch.
struct BatchDocVerdict {
  uint8_t status = 0;
  bool valid = false;
  std::string diagnostic;
};
struct ValidateBatchResponse {
  std::vector<BatchDocVerdict> verdicts;  ///< one per document, in order
  uint64_t fast_path_docs = 0;  ///< answered via the compiled DBTA table
  uint64_t fallback_docs = 0;   ///< answered via the NbtaAccepts fallback
};

struct Response {
  ResponseHeader header;
  std::variant<PingResponse, ValidateResponse, TypecheckResponse,
               InferInverseResponse, LoadArtifactResponse,
               ListArtifactsResponse, StatsResponse, ValidateBatchResponse>
      body;
};

// ---------------------------------------------------------------------------
// Encoding / decoding.
// ---------------------------------------------------------------------------

/// Serializes a request payload (no transport frame).
void EncodeRequest(const Request& request, std::string* out);

/// Parses a request payload. Every byte is range-checked; kParseError on any
/// truncation, trailing bytes, unknown opcode/version, or oversized string
/// field. No request body string may exceed `max_field_bytes`.
Result<Request> DecodeRequest(std::string_view payload,
                              uint32_t max_field_bytes = kMaxFrameBytes);

/// Parses just the fixed-size request header — no version/opcode validation —
/// so a dispatcher can echo the request id and pick the precise error status
/// (kUnsupportedVersion vs kUnknownOpcode vs kMalformedFrame) for payloads
/// that fail full decoding. The returned opcode byte is raw; compare against
/// kMaxOpcode before trusting it.
struct RawRequestHeader {
  uint8_t version = 0;
  uint8_t opcode_byte = 0;
  uint32_t request_id = 0;
  uint32_t deadline_ms = 0;
};
Result<RawRequestHeader> PeekRequestHeader(std::string_view payload);

/// Serializes a response payload (no transport frame). An error response
/// (status != kOk) carries no body section.
void EncodeResponse(const Response& response, std::string* out);

/// Parses a response payload (used by the client and the test suites).
Result<Response> DecodeResponse(std::string_view payload,
                                uint32_t max_field_bytes = kMaxFrameBytes);

/// Appends the u32 length prefix + payload.
void EncodeFrame(std::string_view payload, std::string* out);

/// Incremental frame parser for stream transports. Feed bytes with Append;
/// Next() yields one complete payload at a time. A declared length above
/// `max_frame_bytes` is a hard protocol error: the stream is poisoned (every
/// later Next() fails too, since resynchronization is impossible).
class FrameDecoder {
 public:
  explicit FrameDecoder(uint32_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Append(std::string_view bytes) { buffer_.append(bytes); }

  /// One complete frame payload, std::nullopt if more bytes are needed, or
  /// kParseError if the stream declared an oversized frame.
  Result<std::optional<std::string>> Next();

  /// Bytes buffered but not yet returned (for EOF-mid-frame detection).
  size_t pending_bytes() const { return buffer_.size(); }

 private:
  uint32_t max_frame_bytes_;
  bool poisoned_ = false;
  std::string buffer_;
};

/// Builds a ready-to-send error response for a request that could not be
/// decoded far enough to dispatch (request id defaults to 0 when even the
/// header was unreadable).
Response MakeErrorResponse(Opcode opcode, uint32_t request_id,
                           WireStatus status, std::string detail);

}  // namespace pebbletc::serve

#endif  // PEBBLETC_SERVE_PROTOCOL_H_
