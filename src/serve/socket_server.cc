#include "src/serve/socket_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>

#include "src/serve/protocol.h"

namespace pebbletc::serve {
namespace {

/// Reads exactly `n` bytes; false on EOF or error.
bool ReadFull(int fd, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::read(fd, buf + got, n - got);
    if (r == 0) return false;
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<size_t>(r);
  }
  return true;
}

bool WriteFull(int fd, const char* buf, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t r = ::write(fd, buf + sent, n - sent);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(r);
  }
  return true;
}

bool SendFrame(int fd, std::string_view payload) {
  std::string frame;
  EncodeFrame(payload, &frame);
  return WriteFull(fd, frame.data(), frame.size());
}

/// Hard cap on concurrent connections. The thread-per-connection design
/// otherwise has no bound, so enough idle clients could exhaust fds and
/// wedge accept() in a failure loop; excess connections get one structured
/// kOverloaded frame and an orderly close instead.
constexpr size_t kMaxConnections = 256;

}  // namespace

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start(const std::string& path) {
  if (running_.load()) {
    return Status::FailedPrecondition("socket server already running");
  }
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Status::Internal("bind('" + path +
                                "'): " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 16) < 0) {
    Status s =
        Status::Internal(std::string("listen(): ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  path_ = path;
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  watchdog_thread_ = std::thread([this] { WatchdogLoop(); });
  return Status::OK();
}

void SocketServer::Stop() {
  if (!running_.exchange(false)) return;
  // Unblock accept() and in-flight reads, and cancel running requests.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& conn : connections_) {
      conn->cancel.store(true);
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.swap(connections_);
  }
  for (auto& conn : conns) {
    if (conn->worker.joinable()) conn->worker.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (!path_.empty()) ::unlink(path_.c_str());
}

void SocketServer::AcceptLoop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (!running_.load()) break;
      // Persistent failures (EMFILE under fd pressure, ENOBUFS, ...) would
      // otherwise spin this loop at 100% CPU; back off before retrying.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    auto try_admit = [this, &conn] {
      std::lock_guard<std::mutex> lock(mu_);
      if (connections_.size() >= kMaxConnections) return false;
      connections_.push_back(conn);
      conn->worker = std::thread([this, conn] { HandleConnection(conn); });
      return true;
    };
    bool admitted = try_admit();
    if (!admitted) {
      // At the cap, reap connections whose handlers already finished and
      // retry once — refusal is for genuinely concurrent load, not stale
      // bookkeeping awaiting the watchdog's next tick.
      ReapFinished();
      admitted = try_admit();
    }
    if (!admitted) {
      Response err = MakeErrorResponse(
          Opcode::kPing, 0, WireStatus::kOverloaded,
          "connection limit (" + std::to_string(kMaxConnections) +
              ") reached; retry later");
      std::string payload;
      EncodeResponse(err, &payload);
      SendFrame(fd, payload);
      ::close(fd);
    }
  }
}

void SocketServer::WatchdogLoop() {
  while (running_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& conn : connections_) {
        if (conn->done.load() || !conn->busy.load()) continue;
        // A request is in flight on this connection; probe whether the peer
        // hung up. recv(MSG_PEEK) returning 0 means orderly shutdown — the
        // client is gone, so flip its cancel flag and let the request's next
        // checkpoint unwind it.
        char probe;
        ssize_t r = ::recv(conn->fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
        if (r == 0) {
          conn->cancel.store(true);
        } else if (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          conn->cancel.store(true);
        }
      }
    }
    // Reap finished connections (join the handler thread, drop the entry)
    // so a long-lived daemon doesn't accumulate one joinable thread per
    // historical client.
    ReapFinished();
  }
}

size_t SocketServer::ReapFinished() {
  std::vector<std::shared_ptr<Connection>> finished;
  size_t alive = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::partition(
        connections_.begin(), connections_.end(),
        [](const std::shared_ptr<Connection>& c) { return !c->done.load(); });
    finished.assign(std::make_move_iterator(it),
                    std::make_move_iterator(connections_.end()));
    connections_.erase(it, connections_.end());
    alive = connections_.size();
  }
  // Join outside the lock: a done handler is at most a few instructions from
  // returning and never retakes mu_, but there is no reason to serialize the
  // accept path behind even that.
  for (auto& conn : finished) {
    if (conn->worker.joinable()) conn->worker.join();
  }
  return alive;
}

void SocketServer::HandleConnection(std::shared_ptr<Connection> conn) {
  const uint32_t cap = core_->options().max_frame_bytes;
  while (running_.load()) {
    char len_bytes[4];
    if (!ReadFull(conn->fd, len_bytes, 4)) break;
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(static_cast<unsigned char>(len_bytes[i]))
             << (8 * i);
    }
    if (len > cap) {
      // Framing is unrecoverable: answer with one structured error frame,
      // then close — never read the declared length.
      Response err = MakeErrorResponse(
          Opcode::kPing, 0, WireStatus::kMalformedFrame,
          "declared frame length " + std::to_string(len) + " exceeds the " +
              std::to_string(cap) + "-byte cap");
      std::string payload;
      EncodeResponse(err, &payload);
      SendFrame(conn->fd, payload);
      break;
    }
    std::string request(len, '\0');
    if (len > 0 && !ReadFull(conn->fd, request.data(), len)) break;

    conn->busy.store(true);
    std::string response = core_->HandleFrame(request, &conn->cancel);
    conn->busy.store(false);
    if (conn->cancel.load()) break;  // client gone; response undeliverable
    if (!SendFrame(conn->fd, response)) break;
  }
  ::close(conn->fd);
  conn->done.store(true);
}

}  // namespace pebbletc::serve
