#include "src/serve/protocol.h"

#include <cstring>

#include "src/common/status.h"

namespace pebbletc::serve {
namespace {

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutString(std::string_view s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

class Reader {
 public:
  Reader(std::string_view bytes, uint32_t max_field_bytes)
      : bytes_(bytes), max_field_(max_field_bytes) {}

  Status ReadU8(uint8_t* v) {
    if (pos_ + 1 > bytes_.size()) return Truncated();
    *v = static_cast<uint8_t>(bytes_[pos_++]);
    return Status::OK();
  }

  Status ReadU32(uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) return Truncated();
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) {
      r |= static_cast<uint32_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *v = r;
    return Status::OK();
  }

  Status ReadU64(uint64_t* v) {
    if (pos_ + 8 > bytes_.size()) return Truncated();
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r |= static_cast<uint64_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *v = r;
    return Status::OK();
  }

  Status ReadBool(bool* v) {
    uint8_t b = 0;
    PEBBLETC_RETURN_IF_ERROR(ReadU8(&b));
    if (b > 1) return Status::ParseError("wire bool out of {0, 1}");
    *v = b != 0;
    return Status::OK();
  }

  Status ReadString(std::string* out) {
    uint32_t len = 0;
    PEBBLETC_RETURN_IF_ERROR(ReadU32(&len));
    if (len > max_field_) {
      return Status::ParseError("wire string field exceeds the frame cap");
    }
    if (pos_ + len > bytes_.size()) return Truncated();
    out->assign(bytes_.substr(pos_, len));
    pos_ += len;
    return Status::OK();
  }

  Status Done() const {
    if (pos_ != bytes_.size()) {
      return Status::ParseError("trailing bytes after wire message");
    }
    return Status::OK();
  }

  /// Bytes left to read — used to reject count fields that claim more
  /// entries than the payload can encode, before anything is reserved.
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  static Status Truncated() {
    return Status::ParseError("wire message truncated");
  }

  std::string_view bytes_;
  uint32_t max_field_;
  size_t pos_ = 0;
};

}  // namespace

const char* WireStatusName(WireStatus s) {
  switch (s) {
    case WireStatus::kOk: return "OK";
    case WireStatus::kMalformedFrame: return "MALFORMED_FRAME";
    case WireStatus::kUnsupportedVersion: return "UNSUPPORTED_VERSION";
    case WireStatus::kUnknownOpcode: return "UNKNOWN_OPCODE";
    case WireStatus::kValidationFailed: return "VALIDATION_FAILED";
    case WireStatus::kNotFound: return "NOT_FOUND";
    case WireStatus::kAlreadyExists: return "ALREADY_EXISTS";
    case WireStatus::kOverloaded: return "OVERLOADED";
    case WireStatus::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case WireStatus::kCancelled: return "CANCELLED";
    case WireStatus::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case WireStatus::kFailedPrecondition: return "FAILED_PRECONDITION";
    case WireStatus::kInternal: return "INTERNAL";
    case WireStatus::kInvalidArgument: return "INVALID_ARGUMENT";
  }
  return "UNKNOWN";
}

void EncodeRequest(const Request& request, std::string* out) {
  PutU8(request.header.version, out);
  PutU8(static_cast<uint8_t>(request.header.opcode), out);
  PutU32(request.header.request_id, out);
  PutU32(request.header.deadline_ms, out);
  std::visit(
      [out](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, ValidateRequest>) {
          PutString(body.schema, out);
          PutString(body.document, out);
        } else if constexpr (std::is_same_v<T, TypecheckRequest>) {
          PutString(body.transducer, out);
          PutString(body.input_type, out);
          PutString(body.output_type, out);
        } else if constexpr (std::is_same_v<T, InferInverseRequest>) {
          PutString(body.transducer, out);
          PutString(body.output_type, out);
        } else if constexpr (std::is_same_v<T, LoadArtifactRequest>) {
          PutString(body.name, out);
          PutString(body.artifact, out);
        } else if constexpr (std::is_same_v<T, ValidateBatchRequest>) {
          PutString(body.schema, out);
          PutU32(static_cast<uint32_t>(body.documents.size()), out);
          for (const std::string& doc : body.documents) PutString(doc, out);
        }
        // Ping / ListArtifacts / Stats have empty bodies.
      },
      request.body);
}

Result<Request> DecodeRequest(std::string_view payload,
                              uint32_t max_field_bytes) {
  Reader in(payload, max_field_bytes);
  Request request;
  uint8_t opcode_byte = 0;
  PEBBLETC_RETURN_IF_ERROR(in.ReadU8(&request.header.version));
  PEBBLETC_RETURN_IF_ERROR(in.ReadU8(&opcode_byte));
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&request.header.request_id));
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&request.header.deadline_ms));
  if (request.header.version != kWireVersion) {
    return Status::ParseError("unsupported wire version " +
                              std::to_string(request.header.version));
  }
  if (opcode_byte > kMaxOpcode) {
    return Status::ParseError("unknown opcode " + std::to_string(opcode_byte));
  }
  request.header.opcode = static_cast<Opcode>(opcode_byte);
  switch (request.header.opcode) {
    case Opcode::kPing:
      request.body = PingRequest{};
      break;
    case Opcode::kValidate: {
      ValidateRequest body;
      PEBBLETC_RETURN_IF_ERROR(in.ReadString(&body.schema));
      PEBBLETC_RETURN_IF_ERROR(in.ReadString(&body.document));
      request.body = std::move(body);
      break;
    }
    case Opcode::kTypecheck: {
      TypecheckRequest body;
      PEBBLETC_RETURN_IF_ERROR(in.ReadString(&body.transducer));
      PEBBLETC_RETURN_IF_ERROR(in.ReadString(&body.input_type));
      PEBBLETC_RETURN_IF_ERROR(in.ReadString(&body.output_type));
      request.body = std::move(body);
      break;
    }
    case Opcode::kInferInverse: {
      InferInverseRequest body;
      PEBBLETC_RETURN_IF_ERROR(in.ReadString(&body.transducer));
      PEBBLETC_RETURN_IF_ERROR(in.ReadString(&body.output_type));
      request.body = std::move(body);
      break;
    }
    case Opcode::kLoadArtifact: {
      LoadArtifactRequest body;
      PEBBLETC_RETURN_IF_ERROR(in.ReadString(&body.name));
      PEBBLETC_RETURN_IF_ERROR(in.ReadString(&body.artifact));
      request.body = std::move(body);
      break;
    }
    case Opcode::kListArtifacts:
      request.body = ListArtifactsRequest{};
      break;
    case Opcode::kStats:
      request.body = StatsRequest{};
      break;
    case Opcode::kValidateBatch: {
      ValidateBatchRequest body;
      PEBBLETC_RETURN_IF_ERROR(in.ReadString(&body.schema));
      uint32_t count = 0;
      PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&count));
      // Each document costs at least its 4-byte length prefix, so a hostile
      // count cannot make the server reserve more entries than the payload
      // it actually sent can hold.
      if (count > in.remaining() / 4) {
        return Status::ParseError("batch document count exceeds the payload");
      }
      body.documents.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        std::string doc;
        PEBBLETC_RETURN_IF_ERROR(in.ReadString(&doc));
        body.documents.push_back(std::move(doc));
      }
      request.body = std::move(body);
      break;
    }
  }
  PEBBLETC_RETURN_IF_ERROR(in.Done());
  return request;
}

Result<RawRequestHeader> PeekRequestHeader(std::string_view payload) {
  Reader in(payload, kMaxFrameBytes);
  RawRequestHeader header;
  PEBBLETC_RETURN_IF_ERROR(in.ReadU8(&header.version));
  PEBBLETC_RETURN_IF_ERROR(in.ReadU8(&header.opcode_byte));
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&header.request_id));
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&header.deadline_ms));
  return header;
}

void EncodeResponse(const Response& response, std::string* out) {
  PutU8(response.header.version, out);
  PutU8(static_cast<uint8_t>(response.header.opcode), out);
  PutU32(response.header.request_id, out);
  PutU8(static_cast<uint8_t>(response.header.status), out);
  PutString(response.header.detail, out);
  if (response.header.status != WireStatus::kOk) return;
  std::visit(
      [out](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, ValidateResponse>) {
          PutU8(body.valid ? 1 : 0, out);
          PutString(body.diagnostic, out);
        } else if constexpr (std::is_same_v<T, TypecheckResponse>) {
          PutU8(body.verdict, out);
          PutString(body.method, out);
          PutU8(body.exhausted ? 1 : 0, out);
          PutU8(body.exhaustion_code, out);
          PutString(body.exhaustion_pass, out);
          PutString(body.exhaustion_detail, out);
          PutU64(body.checkpoints, out);
          PutU64(body.states_materialized, out);
          PutString(body.counterexample_input_xml, out);
          PutString(body.counterexample_output_xml, out);
        } else if constexpr (std::is_same_v<T, InferInverseResponse>) {
          PutU32(body.num_states, out);
          PutU32(body.num_leaf_rules, out);
          PutU32(body.num_rules, out);
          PutU64(body.checkpoints, out);
        } else if constexpr (std::is_same_v<T, LoadArtifactResponse>) {
          PutU8(body.kind, out);
        } else if constexpr (std::is_same_v<T, ListArtifactsResponse>) {
          PutU32(static_cast<uint32_t>(body.artifacts.size()), out);
          for (const ArtifactInfo& info : body.artifacts) {
            PutString(info.name, out);
            PutU8(info.kind, out);
          }
        } else if constexpr (std::is_same_v<T, ValidateBatchResponse>) {
          PutU32(static_cast<uint32_t>(body.verdicts.size()), out);
          for (const BatchDocVerdict& v : body.verdicts) {
            PutU8(v.status, out);
            PutU8(v.valid ? 1 : 0, out);
            PutString(v.diagnostic, out);
          }
          PutU64(body.fast_path_docs, out);
          PutU64(body.fallback_docs, out);
        } else if constexpr (std::is_same_v<T, StatsResponse>) {
          PutU64(body.requests_total, out);
          PutU64(body.responses_ok, out);
          PutU64(body.malformed_rejected, out);
          PutU64(body.validation_rejected, out);
          PutU64(body.overload_rejected, out);
          PutU64(body.degraded_verdicts, out);
          PutU64(body.hard_errors, out);
          PutU64(body.faults_injected, out);
          PutU32(body.in_flight, out);
        }
        // Ping has an empty body.
      },
      response.body);
}

Result<Response> DecodeResponse(std::string_view payload,
                                uint32_t max_field_bytes) {
  Reader in(payload, max_field_bytes);
  Response response;
  uint8_t opcode_byte = 0, status_byte = 0;
  PEBBLETC_RETURN_IF_ERROR(in.ReadU8(&response.header.version));
  PEBBLETC_RETURN_IF_ERROR(in.ReadU8(&opcode_byte));
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&response.header.request_id));
  PEBBLETC_RETURN_IF_ERROR(in.ReadU8(&status_byte));
  PEBBLETC_RETURN_IF_ERROR(in.ReadString(&response.header.detail));
  if (response.header.version != kWireVersion) {
    return Status::ParseError("unsupported wire version");
  }
  if (opcode_byte > kMaxOpcode) {
    return Status::ParseError("unknown opcode in response");
  }
  if (status_byte > static_cast<uint8_t>(WireStatus::kInvalidArgument)) {
    return Status::ParseError("unknown wire status in response");
  }
  response.header.opcode = static_cast<Opcode>(opcode_byte);
  response.header.status = static_cast<WireStatus>(status_byte);
  if (response.header.status != WireStatus::kOk) {
    PEBBLETC_RETURN_IF_ERROR(in.Done());
    return response;
  }
  switch (response.header.opcode) {
    case Opcode::kPing:
      response.body = PingResponse{};
      break;
    case Opcode::kValidate: {
      ValidateResponse body;
      PEBBLETC_RETURN_IF_ERROR(in.ReadBool(&body.valid));
      PEBBLETC_RETURN_IF_ERROR(in.ReadString(&body.diagnostic));
      response.body = std::move(body);
      break;
    }
    case Opcode::kTypecheck: {
      TypecheckResponse body;
      PEBBLETC_RETURN_IF_ERROR(in.ReadU8(&body.verdict));
      if (body.verdict > 2) {
        return Status::ParseError("typecheck verdict out of range");
      }
      PEBBLETC_RETURN_IF_ERROR(in.ReadString(&body.method));
      PEBBLETC_RETURN_IF_ERROR(in.ReadBool(&body.exhausted));
      PEBBLETC_RETURN_IF_ERROR(in.ReadU8(&body.exhaustion_code));
      PEBBLETC_RETURN_IF_ERROR(in.ReadString(&body.exhaustion_pass));
      PEBBLETC_RETURN_IF_ERROR(in.ReadString(&body.exhaustion_detail));
      PEBBLETC_RETURN_IF_ERROR(in.ReadU64(&body.checkpoints));
      PEBBLETC_RETURN_IF_ERROR(in.ReadU64(&body.states_materialized));
      PEBBLETC_RETURN_IF_ERROR(in.ReadString(&body.counterexample_input_xml));
      PEBBLETC_RETURN_IF_ERROR(in.ReadString(&body.counterexample_output_xml));
      response.body = std::move(body);
      break;
    }
    case Opcode::kInferInverse: {
      InferInverseResponse body;
      PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&body.num_states));
      PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&body.num_leaf_rules));
      PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&body.num_rules));
      PEBBLETC_RETURN_IF_ERROR(in.ReadU64(&body.checkpoints));
      response.body = std::move(body);
      break;
    }
    case Opcode::kLoadArtifact: {
      LoadArtifactResponse body;
      PEBBLETC_RETURN_IF_ERROR(in.ReadU8(&body.kind));
      response.body = body;
      break;
    }
    case Opcode::kListArtifacts: {
      ListArtifactsResponse body;
      uint32_t count = 0;
      PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&count));
      // An entry is at least 5 wire bytes (4-byte name length + 1-byte
      // kind), so a hostile or buggy server cannot make the client reserve
      // more entries than the payload it actually sent can hold.
      if (count > in.remaining() / 5) {
        return Status::ParseError("artifact list count exceeds the payload");
      }
      body.artifacts.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        ArtifactInfo info;
        PEBBLETC_RETURN_IF_ERROR(in.ReadString(&info.name));
        PEBBLETC_RETURN_IF_ERROR(in.ReadU8(&info.kind));
        body.artifacts.push_back(std::move(info));
      }
      response.body = std::move(body);
      break;
    }
    case Opcode::kValidateBatch: {
      ValidateBatchResponse body;
      uint32_t count = 0;
      PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&count));
      // A verdict is at least 6 wire bytes (status + valid + 4-byte
      // diagnostic length), so a hostile count cannot force an oversized
      // reserve.
      if (count > in.remaining() / 6) {
        return Status::ParseError("batch verdict count exceeds the payload");
      }
      body.verdicts.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        BatchDocVerdict v;
        PEBBLETC_RETURN_IF_ERROR(in.ReadU8(&v.status));
        if (v.status > static_cast<uint8_t>(WireStatus::kInvalidArgument)) {
          return Status::ParseError("unknown wire status in batch verdict");
        }
        PEBBLETC_RETURN_IF_ERROR(in.ReadBool(&v.valid));
        PEBBLETC_RETURN_IF_ERROR(in.ReadString(&v.diagnostic));
        body.verdicts.push_back(std::move(v));
      }
      PEBBLETC_RETURN_IF_ERROR(in.ReadU64(&body.fast_path_docs));
      PEBBLETC_RETURN_IF_ERROR(in.ReadU64(&body.fallback_docs));
      response.body = std::move(body);
      break;
    }
    case Opcode::kStats: {
      StatsResponse body;
      PEBBLETC_RETURN_IF_ERROR(in.ReadU64(&body.requests_total));
      PEBBLETC_RETURN_IF_ERROR(in.ReadU64(&body.responses_ok));
      PEBBLETC_RETURN_IF_ERROR(in.ReadU64(&body.malformed_rejected));
      PEBBLETC_RETURN_IF_ERROR(in.ReadU64(&body.validation_rejected));
      PEBBLETC_RETURN_IF_ERROR(in.ReadU64(&body.overload_rejected));
      PEBBLETC_RETURN_IF_ERROR(in.ReadU64(&body.degraded_verdicts));
      PEBBLETC_RETURN_IF_ERROR(in.ReadU64(&body.hard_errors));
      PEBBLETC_RETURN_IF_ERROR(in.ReadU64(&body.faults_injected));
      PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&body.in_flight));
      response.body = std::move(body);
      break;
    }
  }
  PEBBLETC_RETURN_IF_ERROR(in.Done());
  return response;
}

void EncodeFrame(std::string_view payload, std::string* out) {
  PutU32(static_cast<uint32_t>(payload.size()), out);
  out->append(payload);
}

Result<std::optional<std::string>> FrameDecoder::Next() {
  if (poisoned_) {
    return Status::ParseError("frame stream poisoned by an oversized frame");
  }
  if (buffer_.size() < 4) return std::optional<std::string>();
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<unsigned char>(buffer_[i]))
           << (8 * i);
  }
  if (len > max_frame_bytes_) {
    // A bad length desynchronizes the stream permanently — there is no way
    // to find the next frame boundary, so fail every subsequent read too.
    poisoned_ = true;
    return Status::ParseError("declared frame length " + std::to_string(len) +
                              " exceeds the " +
                              std::to_string(max_frame_bytes_) + "-byte cap");
  }
  if (buffer_.size() < 4 + static_cast<size_t>(len)) {
    return std::optional<std::string>();
  }
  std::string payload = buffer_.substr(4, len);
  buffer_.erase(0, 4 + static_cast<size_t>(len));
  return std::optional<std::string>(std::move(payload));
}

Response MakeErrorResponse(Opcode opcode, uint32_t request_id,
                           WireStatus status, std::string detail) {
  Response response;
  response.header.opcode = opcode;
  response.header.request_id = request_id;
  response.header.status = status;
  response.header.detail = std::move(detail);
  return response;
}

}  // namespace pebbletc::serve
