// The serving layer's validation fast path (docs/VALIDATION.md): a named
// artifact compiled once into a ValidationPlan — tag table, Section 2.1
// encoding, and a compiled MembershipEngine — then applied per document with
// arena-scoped parsing, or fanned out across a whole batch.
//
// ValidateDoc preserves the wire semantics DoValidate always had (same
// verdicts, same diagnostics, same error codes for malformed documents); the
// plan only changes how the answer is computed: streaming DBTA fold when the
// engine compiled, NbtaAccepts fallback when determinization blew its
// budget. ValidateBatch runs one plan over N documents, sharding across
// TaThreadPool workers with merge-on-join contexts — the first workload
// where one request gives the pool real concurrent work.

#ifndef PEBBLETC_SERVE_VALIDATE_H_
#define PEBBLETC_SERVE_VALIDATE_H_

#include <memory>
#include <memory_resource>
#include <string>
#include <string_view>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/dtd/dtd.h"
#include "src/ta/membership.h"
#include "src/ta/op_cache.h"
#include "src/ta/op_context.h"
#include "src/ta/serialize.h"

namespace pebbletc::serve {

/// A validation artifact compiled for repeated membership queries. Cheap to
/// copy (shared payloads); safe to share across threads once compiled.
struct ValidationPlan {
  /// Unranked tag table documents are resolved against (never mutated).
  Alphabet tags;
  /// The Section 2.1 encoding of `tags`; `engine` runs over `enc.ranked`.
  EncodedAlphabet enc;
  /// Compiled membership (fast DBTA table, or NbtaAccepts fallback).
  MembershipEngine engine;
  /// Set for DTD artifacts: renders per-node diagnostics for rejections.
  std::shared_ptr<const SpecializedDtd> dtd;
};

/// Compiles a DTD artifact into a plan. Determinization runs under `ctx`
/// budgets against `cache` (null = process-wide); a budget blowup degrades
/// the engine to the fallback route, while deadline/cancel propagate.
Result<ValidationPlan> CompileDtdPlan(
    std::shared_ptr<const SpecializedDtd> dtd, TaOpContext* ctx = nullptr,
    TaOpCache* cache = nullptr);

/// Compiles a schema artifact (ranked automaton + alphabet) into a plan.
Result<ValidationPlan> CompileSchemaPlan(const SchemaArtifact& schema,
                                         TaOpContext* ctx = nullptr,
                                         TaOpCache* cache = nullptr);

/// Per-document outcome. `code` is kOk whenever validation itself completed
/// (even with valid == false); a non-kOk code means this document's request
/// failed — malformed XML (kInvalidArgument, diagnostic prefixed
/// "document: "), deadline, cancellation, injected fault — and `diagnostic`
/// carries the Status message.
struct DocVerdict {
  StatusCode code = StatusCode::kOk;
  bool valid = false;
  std::string diagnostic;
};

/// Validates one document against a compiled plan. `mem` (null = default
/// heap) hosts every per-document allocation — tree, encoding, state
/// stacks — so a request loop can pass an Arena and Reset() between calls.
/// Checkpoints under `ctx`, so deadline/cancel/fault surface per document.
DocVerdict ValidateDoc(const ValidationPlan& plan, std::string_view document,
                       TaOpContext* ctx = nullptr,
                       std::pmr::memory_resource* mem = nullptr);

struct BatchResult {
  std::vector<DocVerdict> verdicts;  ///< one per input document, in order
  uint64_t fast_path_docs = 0;       ///< answered via the compiled table
  uint64_t fallback_docs = 0;        ///< answered via NbtaAccepts
};

/// Validates every document against one plan. Fans out across
/// min(TaEffectiveThreads(ctx), documents.size()) TaThreadPool workers, each
/// on a Fork() child context with its own arena (merged back on join); a
/// context carrying a fault injector runs serial with deterministic
/// checkpoint ordinals. Once the context's sticky interrupt trips (deadline,
/// disconnect cancellation), every not-yet-validated document reports that
/// code honestly instead of a fabricated verdict.
BatchResult ValidateBatch(const ValidationPlan& plan,
                          const std::vector<std::string>& documents,
                          TaOpContext* ctx = nullptr);

}  // namespace pebbletc::serve

#endif  // PEBBLETC_SERVE_VALIDATE_H_
