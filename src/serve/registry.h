// The artifact registry: named, pre-compiled schemas, DTDs, transducers, and
// XSLT programs the daemon serves requests against (docs/SERVING.md).
//
// Thread-safety model: the registry hands out `shared_ptr<const Entry>`
// snapshots. Installing or replacing a name swaps the map slot under a
// mutex; requests already holding the old snapshot keep using it until they
// finish, so hot-reloading an artifact never invalidates an in-flight
// request. Entries are immutable after installation.
//
// Two sources feed the registry:
//   * LoadDirectory — `.dtd` (text, ParseSpecializedDtd), `.xslt` (text,
//     ParseXslt; compiled per typecheck request, see below), and `.ptar`
//     (WrapTaArtifact binary containers) files, named by file stem;
//   * the kLoadArtifact wire op — a `.ptar`-style container in the request
//     body, validated end-to-end by the validity tier before installation.
//
// XSLT programs are stored *as programs*, not as compiled transducers: the
// XSLT fragment's alphabets depend on which DTDs a request pairs it with
// (the input alphabet is template heads ∪ τ1's tags, the output alphabet
// literal tags ∪ τ2's tags — the pebbletc_cli convention), so compilation
// happens per request. The heavy downstream algebra (complements,
// determinizations, products) is memoized structurally by the op cache
// (docs/CACHING.md), which is what actually amortizes repeated requests.

#ifndef PEBBLETC_SERVE_REGISTRY_H_
#define PEBBLETC_SERVE_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/dtd/dtd.h"
#include "src/query/xslt.h"
#include "src/ta/serialize.h"

namespace pebbletc::serve {

/// What a registry name resolves to. Exactly one of the payload pointers is
/// set, matching `kind`. (kXslt is registry-only — XSLT programs are text
/// artifacts, not members of the binary TaArtifactKind enum; `kind_byte`
/// distinguishes them on the wire in ListArtifacts.)
struct RegistryEntry {
  enum class Kind : uint8_t {
    kDtd = 0,
    kSchema = 1,
    kTransducer = 2,
    kXslt = 3,
  };
  Kind kind = Kind::kDtd;

  std::shared_ptr<const SpecializedDtd> dtd;
  std::shared_ptr<const SchemaArtifact> schema;
  std::shared_ptr<const TransducerArtifact> transducer;

  /// For kXslt: the parsed program plus the alphabets its source interned
  /// (template heads / literal output tags). Requests copy these and extend
  /// them with the paired DTDs' tags before compiling.
  struct XsltSource {
    XsltProgram program;
    Alphabet head_tags;
    Alphabet literal_tags;
  };
  std::shared_ptr<const XsltSource> xslt;
};

const char* RegistryKindName(RegistryEntry::Kind kind);

class ArtifactRegistry {
 public:
  /// Installs (or replaces) `entry` under `name`.
  void Put(std::string_view name, RegistryEntry entry);

  /// Snapshot lookup; nullptr when absent.
  std::shared_ptr<const RegistryEntry> Get(std::string_view name) const;

  /// Parses and installs a WrapTaArtifact container (kDtd / kSchema /
  /// kTransducer payloads; kNbta and kDbta are cache-internal formats and
  /// are rejected here — a bare automaton without its alphabet cannot answer
  /// requests). The payload is fully deserialized and validated before the
  /// name becomes visible.
  Result<RegistryEntry::Kind> PutWrapped(std::string_view name,
                                         std::string_view container_bytes);

  /// Parses `text` as an XSLT program and installs it under `name`.
  Status PutXsltText(std::string_view name, std::string_view text);

  /// Parses `text` as a (specialized) DTD and installs it under `name`.
  Status PutDtdText(std::string_view name, std::string_view text);

  /// Loads every `.dtd`, `.xslt`, and `.ptar` file in `dir` (non-recursive),
  /// named by file stem. Returns the number of artifacts installed; fails on
  /// the first unreadable or unparsable file (a daemon must not come up
  /// half-loaded with artifacts silently missing).
  Result<size_t> LoadDirectory(const std::string& dir);

  /// Name → kind listing, sorted by name.
  std::vector<std::pair<std::string, RegistryEntry::Kind>> List() const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const RegistryEntry>, std::less<>>
      entries_;
};

/// An EncodedAlphabet reconstructed from a stored ranked alphabet, plus the
/// unranked tag table XML documents parse against. `enc.ranked` is a copy of
/// the source alphabet, so automata and transducers serialized over it keep
/// their symbol ids.
struct RankedEncodingView {
  Alphabet tags;
  EncodedAlphabet enc;
};

/// Rebuilds the encoding view of a ranked alphabet that was produced by
/// MakeEncodedAlphabet (e.g. one stored in a transducer or schema artifact):
/// locates the `-`/`|` symbols and derives the unranked tag table with an
/// id-exact `tag_symbol` mapping. Fails with kFailedPrecondition if the
/// alphabet lacks the encoding symbols — such an artifact cannot process
/// XML documents.
Result<RankedEncodingView> EncodedViewOfRanked(const RankedAlphabet& ranked);

}  // namespace pebbletc::serve

#endif  // PEBBLETC_SERVE_REGISTRY_H_
