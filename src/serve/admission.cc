#include "src/serve/admission.h"

#include <algorithm>

namespace pebbletc::serve {

AdmissionController::AdmissionController(uint32_t max_in_flight,
                                         uint32_t max_queued)
    : max_in_flight_(std::max(1u, max_in_flight)),
      max_queued_(std::max(1u, max_queued)) {}

void AdmissionController::Slot::Release() {
  if (controller_ != nullptr) {
    controller_->Release();
    controller_ = nullptr;
  }
}

Result<AdmissionController::Slot> AdmissionController::Admit(
    std::chrono::milliseconds max_wait) {
  std::unique_lock<std::mutex> lock(mu_);
  if (in_flight_ < max_in_flight_) {
    ++in_flight_;
    ++total_admitted_;
    return Slot(this);
  }
  if (queued_ >= max_queued_) {
    ++total_rejected_;
    return Status::ResourceExhausted(
        "server overloaded: " + std::to_string(in_flight_) +
        " requests in flight and the wait queue is full — back off and retry");
  }
  ++queued_;
  const bool got_slot = slot_free_.wait_for(
      lock, max_wait, [this] { return in_flight_ < max_in_flight_; });
  --queued_;
  if (!got_slot) {
    ++total_rejected_;
    return Status::ResourceExhausted(
        "server overloaded: no slot freed within the admission grace "
        "period — back off and retry");
  }
  ++in_flight_;
  ++total_admitted_;
  return Slot(this);
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
  }
  slot_free_.notify_one();
}

uint32_t AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

uint32_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

uint64_t AdmissionController::total_admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_admitted_;
}

uint64_t AdmissionController::total_rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_rejected_;
}

}  // namespace pebbletc::serve
