#include "src/serve/validity.h"

#include <string>
#include <string_view>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/ta/serialize.h"
#include "src/xml/xml.h"

namespace pebbletc::serve {
namespace {

bool IsNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
}

Status CheckName(std::string_view name, std::string_view field,
                 const ValidityOptions& options) {
  if (name.empty()) {
    return Status::InvalidArgument(std::string(field) + " name is empty");
  }
  if (name.size() > options.max_name_bytes) {
    return Status::InvalidArgument(
        std::string(field) + " name exceeds " +
        std::to_string(options.max_name_bytes) + " bytes");
  }
  for (char c : name) {
    if (!IsNameChar(c)) {
      return Status::InvalidArgument(
          std::string(field) +
          " name contains a character outside [A-Za-z0-9_.-]");
    }
  }
  return Status::OK();
}

Status CheckBasic(const Request& request, const ValidityOptions& options) {
  if (request.header.deadline_ms > options.max_deadline_ms) {
    return Status::InvalidArgument(
        "requested deadline " + std::to_string(request.header.deadline_ms) +
        "ms exceeds the server maximum of " +
        std::to_string(options.max_deadline_ms) + "ms");
  }
  return std::visit(
      [&options](const auto& body) -> Status {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, ValidateRequest>) {
          PEBBLETC_RETURN_IF_ERROR(
              CheckName(body.schema, "schema", options));
          if (body.document.empty()) {
            return Status::InvalidArgument("document is empty");
          }
          if (body.document.size() > options.max_document_bytes) {
            return Status::InvalidArgument(
                "document exceeds " +
                std::to_string(options.max_document_bytes) + " bytes");
          }
        } else if constexpr (std::is_same_v<T, TypecheckRequest>) {
          PEBBLETC_RETURN_IF_ERROR(
              CheckName(body.transducer, "transducer", options));
          PEBBLETC_RETURN_IF_ERROR(
              CheckName(body.input_type, "input type", options));
          PEBBLETC_RETURN_IF_ERROR(
              CheckName(body.output_type, "output type", options));
        } else if constexpr (std::is_same_v<T, InferInverseRequest>) {
          PEBBLETC_RETURN_IF_ERROR(
              CheckName(body.transducer, "transducer", options));
          PEBBLETC_RETURN_IF_ERROR(
              CheckName(body.output_type, "output type", options));
        } else if constexpr (std::is_same_v<T, LoadArtifactRequest>) {
          PEBBLETC_RETURN_IF_ERROR(CheckName(body.name, "artifact", options));
          if (body.artifact.empty()) {
            return Status::InvalidArgument("artifact payload is empty");
          }
          if (body.artifact.size() > options.max_artifact_bytes) {
            return Status::InvalidArgument(
                "artifact payload exceeds " +
                std::to_string(options.max_artifact_bytes) + " bytes");
          }
        } else if constexpr (std::is_same_v<T, ValidateBatchRequest>) {
          PEBBLETC_RETURN_IF_ERROR(
              CheckName(body.schema, "schema", options));
          if (body.documents.empty()) {
            return Status::InvalidArgument("batch carries no documents");
          }
          if (body.documents.size() > options.max_batch_docs) {
            return Status::InvalidArgument(
                "batch of " + std::to_string(body.documents.size()) +
                " documents exceeds the limit of " +
                std::to_string(options.max_batch_docs));
          }
          for (size_t i = 0; i < body.documents.size(); ++i) {
            if (body.documents[i].empty()) {
              return Status::InvalidArgument("batch document " +
                                             std::to_string(i) + " is empty");
            }
            if (body.documents[i].size() > options.max_document_bytes) {
              return Status::InvalidArgument(
                  "batch document " + std::to_string(i) + " exceeds " +
                  std::to_string(options.max_document_bytes) + " bytes");
            }
          }
        }
        return Status::OK();
      },
      request.body);
}

Status CheckFull(const Request& request, const ValidityOptions& options) {
  (void)options;
  return std::visit(
      [](const auto& body) -> Status {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, ValidateRequest>) {
          // Well-formedness pre-parse against a throwaway alphabet: after
          // this, dispatch parses the same text against the schema's tag
          // table knowing the only possible new failure is an unknown tag.
          Alphabet scratch;
          Result<UnrankedTree> doc = ParseXml(body.document, &scratch);
          if (!doc.ok()) {
            return Status::InvalidArgument("document is not well-formed: " +
                                           doc.status().ToString());
          }
        } else if constexpr (std::is_same_v<T, ValidateBatchRequest>) {
          // Same pre-parse, per document; the message names the offender so
          // the client can drop just that document and resend.
          for (size_t i = 0; i < body.documents.size(); ++i) {
            Alphabet scratch;
            Result<UnrankedTree> doc = ParseXml(body.documents[i], &scratch);
            if (!doc.ok()) {
              return Status::InvalidArgument(
                  "batch document " + std::to_string(i) +
                  " is not well-formed: " + doc.status().ToString());
            }
          }
        } else if constexpr (std::is_same_v<T, LoadArtifactRequest>) {
          // Unwrap + full payload deserialization: every structural
          // invariant (ranges, ranks, regex arity/depth, checksum) holds
          // before the artifact is allowed anywhere near the registry.
          Result<TaArtifactView> view = UnwrapTaArtifact(body.artifact);
          if (!view.ok()) return view.status();
          switch (view->kind) {
            case TaArtifactKind::kDtd: {
              Result<SpecializedDtd> dtd =
                  DeserializeDtdArtifact(view->payload);
              if (!dtd.ok()) return dtd.status();
              break;
            }
            case TaArtifactKind::kSchema: {
              Result<SchemaArtifact> schema =
                  DeserializeSchemaArtifact(view->payload);
              if (!schema.ok()) return schema.status();
              break;
            }
            case TaArtifactKind::kTransducer: {
              Result<TransducerArtifact> transducer =
                  DeserializeTransducerArtifact(view->payload);
              if (!transducer.ok()) return transducer.status();
              break;
            }
            case TaArtifactKind::kNbta:
            case TaArtifactKind::kDbta:
              return Status::InvalidArgument(
                  "bare automaton artifacts cannot be served; wrap as a "
                  "schema artifact");
          }
        }
        return Status::OK();
      },
      request.body);
}

}  // namespace

Status CheckRequest(const Request& request, const ValidityOptions& options) {
  if (options.level == ValidityLevel::kOff) return Status::OK();
  PEBBLETC_RETURN_IF_ERROR(CheckBasic(request, options));
  if (options.level == ValidityLevel::kBasic) return Status::OK();
  return CheckFull(request, options);
}

}  // namespace pebbletc::serve
