#include "src/ta/convert.h"

namespace pebbletc {

Nbta TopDownToNbta(const TopDownTA& input, TaOpContext* ctx) {
  TaOpTimer timer(ctx);
  const TopDownTA a = EliminateSilentTransitions(input, ctx);
  Nbta out;
  out.num_symbols = a.num_symbols;
  for (StateId q = 0; q < a.num_states; ++q) out.AddState();
  if (a.num_states == 0) out.AddState();  // keep downstream invariants
  if (a.start < out.num_states) out.accepting[a.start] = true;
  for (const TopDownTA::FinalPair& f : a.final_pairs) {
    out.AddLeafRule(f.symbol, f.state);
  }
  for (const TopDownTA::BinaryRule& r : a.rules) {
    out.AddRule(r.symbol, r.left, r.right, r.from);
  }
  TaCountStates(ctx, out.num_states);
  TaCountRules(ctx, out.leaf_rules.size() + out.rules.size());
  return out;
}

TopDownTA NbtaToTopDown(const Nbta& a, TaOpContext* ctx) {
  TaOpTimer timer(ctx);
  TopDownTA out;
  out.num_symbols = a.num_symbols;
  for (StateId q = 0; q < a.num_states; ++q) out.AddState();
  for (const Nbta::LeafRule& r : a.leaf_rules) {
    out.AddFinalPair(r.symbol, r.to);
  }
  for (const Nbta::BinaryRule& r : a.rules) {
    out.AddRule(r.symbol, r.to, r.left, r.right);
  }

  // Start state: reuse a unique accepting state, otherwise synthesize one
  // mirroring every accepting state's rules.
  StateId unique_accepting = kNoSymbol;
  size_t num_accepting = 0;
  for (StateId q = 0; q < a.num_states; ++q) {
    if (a.accepting[q]) {
      unique_accepting = q;
      ++num_accepting;
    }
  }
  if (num_accepting == 1) {
    out.start = unique_accepting;
  } else {
    StateId fresh = out.AddState();
    out.start = fresh;
    for (const Nbta::LeafRule& r : a.leaf_rules) {
      if (a.accepting[r.to]) out.AddFinalPair(r.symbol, fresh);
    }
    for (const Nbta::BinaryRule& r : a.rules) {
      if (a.accepting[r.to]) out.AddRule(r.symbol, fresh, r.left, r.right);
    }
  }
  TaCountStates(ctx, out.num_states);
  TaCountRules(ctx, out.final_pairs.size() + out.rules.size());
  return out;
}

}  // namespace pebbletc
