// Content-addressed memoization for the tree-automaton algebra.
//
// At service scale the same algebra subexpressions recur constantly —
// complement(τ2) is shared by every transducer checked against one output
// schema, and determinized/minimized forms of popular DTDs are recomputed
// per request — yet each call into DeterminizeNbta / ComplementNbta /
// IntersectNbta / MinimizeDbta historically started cold. This layer gives
// every expensive op one dispatch path (the TaAlgebra facade):
//
//   canonicalize the operands  →  structural hash (order-independent and
//   rename-invariant: the operand is trimmed and states are renumbered by a
//   refinement coloring, so schedule-dependent state numbering from the
//   parallel product never splits cache entries)  →  probe a bounded
//   content-addressed cache keyed by (op, operand hashes, relevant budget
//   caps)  →  compute on miss under the existing TaOpContext discipline  →
//   insert with size-aware LRU eviction.
//
// Hit/miss/evict/byte counters fold into TaOpContext exactly like the timing
// counters. The cache is opt-in per context (TaOpBudgets::memo); a context
// carrying a fault injector is always served cold, so injection ordinals and
// unwind paths stay deterministic. Entries optionally persist across
// processes through an attached directory (binary format per
// docs/FORMATS.md) with checksum verification on load and corrupt-entry
// quarantine. Keying rules, canonicalization invariants, and the eviction
// policy are specified in docs/CACHING.md; the diffcheck oracle arbitrates
// the cache with cached-vs-cold laws like every other optimization.

#ifndef PEBBLETC_TA_OP_CACHE_H_
#define PEBBLETC_TA_OP_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/ta/inclusion.h"
#include "src/ta/nbta.h"
#include "src/ta/op_context.h"

namespace pebbletc {

class NbtaIndex;

/// A 128-bit structural fingerprint of an automaton. Equal fingerprints are
/// treated as equal content by the cache (the content-addressed contract —
/// the same trust git places in its object hashes).
struct TaStructuralHash {
  uint64_t lo = 0;
  uint64_t hi = 0;
  bool operator==(const TaStructuralHash&) const = default;
};

/// Rename-invariant, order-independent fingerprint of inst-relevant
/// structure: the automaton is trimmed, states are colored by an iterated
/// refinement over the rule hypergraph (Weisfeiler–Leman style), and the
/// final hash combines per-state colors and per-rule color signatures as
/// sorted, deduplicated multisets. Invariants (docs/CACHING.md):
///   * permuting states or reordering rule lists never changes the hash;
///   * duplicate rules never change the hash (the parallel product may emit
///     different multiplicities per schedule);
///   * adding/removing dead states never changes the hash (trim first).
TaStructuralHash NbtaStructuralHash(const Nbta& a);

/// Fingerprint of a deterministic complete automaton. DBTAs reaching the
/// cache come from deterministic serial constructions (subset construction,
/// Moore minimization), whose numbering is already canonical for fixed
/// input, so this hashes the exact representation (cheaper, collision-free
/// across distinct tables).
TaStructuralHash DbtaStructuralHash(const Dbta& d);

/// Promotes an externally computed 64-bit fingerprint (e.g. of a transducer)
/// to a key operand.
TaStructuralHash TaFingerprintHash(uint64_t fingerprint);

/// Fingerprint of the rank structure of `sigma` (symbol names are semantic-
/// free ids; only the leaf/binary partition affects op results).
uint64_t RankedAlphabetFingerprint(const RankedAlphabet& sigma);

/// The cacheable operations, as key discriminants. kPipelineOffending is a
/// composite artifact: the typechecker's pass-2 offending product, keyed on
/// the *input* hashes (τ1, τ2, transducer) so a warm repeat decision skips
/// the whole complement/determinize/product chain — including the structural
/// hashing of the large intermediate automata.
/// kIncludedIn caches an inclusion *verdict* as an automaton payload: the
/// empty-language automaton for "included", the singleton automaton of the
/// counterexample tree for "not included" (decoded on hit via IsEmptyNbta /
/// WitnessTree) — so verdicts ride the existing Nbta payload, serialization,
/// and persistence machinery unchanged.
enum class TaOpKind : uint64_t {
  kDeterminize = 1,
  kComplement = 2,
  kIntersect = 3,
  kMinimize = 4,
  kDownwardProduct = 5,
  kPipelineOffending = 6,
  kIncludedIn = 7,
  /// The validation fast path's compiled run table (docs/VALIDATION.md): the
  /// complete DBTA a validating NBTA determinizes to. Keyed separately from
  /// kDeterminize so the shared-payload handoff stays explicit: membership
  /// compilation returns the cached table by shared_ptr (no per-request
  /// copy), which a future payload change must not silently impose on the
  /// general Determinize callers.
  kCompiledMembership = 8,
};

/// A complete cache key: op, both operand fingerprints (b zero for unary
/// ops), and `extra` mixing the alphabet fingerprint with every budget cap
/// the op's success depends on — same operands under different caps must not
/// alias (a success under a small cap is replayable under a larger one, but
/// not vice versa).
struct TaCacheKey {
  uint64_t op = 0;
  TaStructuralHash a;
  TaStructuralHash b;
  uint64_t extra = 0;
  bool operator==(const TaCacheKey&) const = default;
};

TaCacheKey MakeTaCacheKey(TaOpKind op, const TaStructuralHash& a,
                          const TaStructuralHash& b, uint64_t alphabet_fp,
                          uint64_t budget_cap);

/// Order-dependent combiner for folding several fingerprints / budget caps
/// into one key operand (e.g. the composite pipeline key mixes both alphabet
/// fingerprints, the transducer fingerprint, and two budget caps).
uint64_t TaMixFingerprints(uint64_t a, uint64_t b);

/// A bounded, thread-safe, content-addressed store of computed automata.
/// Size-aware LRU: entries are charged their payload byte size and the
/// least-recently-used entries are evicted until the total fits the
/// capacity. One process-wide instance (Global()) backs the TaAlgebra
/// facade by default; tests and benchmarks may run private instances.
class TaOpCache {
 public:
  static constexpr size_t kDefaultCapacityBytes = 64ull << 20;

  explicit TaOpCache(size_t capacity_bytes = kDefaultCapacityBytes);
  ~TaOpCache();

  TaOpCache(const TaOpCache&) = delete;
  TaOpCache& operator=(const TaOpCache&) = delete;

  /// The process-wide cache.
  static TaOpCache& Global();

  /// Lookup. A hit refreshes recency and bumps ctx->counters.memo_hits; a
  /// miss bumps memo_misses. Payload type must match the key's op (an
  /// entry of the other type is a miss).
  std::shared_ptr<const Nbta> FindNbta(const TaCacheKey& key,
                                       TaOpContext* ctx);
  std::shared_ptr<const Dbta> FindDbta(const TaCacheKey& key,
                                       TaOpContext* ctx);

  /// Insert (idempotent: re-inserting an existing key only refreshes
  /// recency). Bumps memo_bytes by the payload size and memo_evictions per
  /// entry displaced. When a persistent directory is attached, the entry is
  /// also written through to disk.
  void InsertNbta(const TaCacheKey& key, const Nbta& value, TaOpContext* ctx);
  void InsertDbta(const TaCacheKey& key, const Dbta& value, TaOpContext* ctx);

  /// Shrinking the capacity evicts (oldest-first) until the contents fit.
  void set_capacity_bytes(size_t bytes);
  size_t capacity_bytes() const;
  size_t size_bytes() const;
  size_t entries() const;

  /// Drops every in-memory entry (attached directory contents are kept).
  void Clear();

  /// Attaches `dir` for cross-process persistence: existing entries listed
  /// in the manifest are loaded (in manifest order, least-recent-first, so a
  /// capacity-bound load evicts the stalest first) after checksum
  /// verification — a corrupt or truncated entry
  /// file is renamed to "<name>.quarantined" and skipped, never trusted —
  /// and subsequent inserts write through. `loaded` / `quarantined`
  /// (optional) report what happened. The directory is created if absent.
  Status AttachPersistentDir(const std::string& dir, size_t* loaded = nullptr,
                             size_t* quarantined = nullptr);

  /// Rewrites the manifest to list the current in-memory entries. Called by
  /// the destructor when a directory is attached; on-disk entry files for
  /// since-evicted entries are left behind and simply not listed.
  Status Flush();

  const std::string& persistent_dir() const { return dir_; }

 private:
  struct Entry {
    std::shared_ptr<const Nbta> nbta;  // exactly one of the two is set
    std::shared_ptr<const Dbta> dbta;
    size_t bytes = 0;
    std::list<TaCacheKey>::iterator lru_it;
  };
  struct KeyHash {
    size_t operator()(const TaCacheKey& k) const;
  };

  // All private helpers assume mu_ is held.
  void Touch(Entry& e);
  void EvictToFitLocked(size_t incoming_bytes, TaOpContext* ctx);
  void InsertLocked(const TaCacheKey& key, Entry entry, TaOpContext* ctx);
  Status WriteEntryFile(const TaCacheKey& key, const Entry& entry) const;

  mutable std::mutex mu_;
  size_t capacity_bytes_;
  size_t size_bytes_ = 0;
  std::list<TaCacheKey> lru_;  // front = most recent
  std::unordered_map<TaCacheKey, Entry, KeyHash> map_;
  std::string dir_;
};

/// The unified op-dispatch facade: every expensive algebra op runs through
/// one of these methods, which consult the cache when the context opts in
/// (TaOpBudgets::memo != kOff and no fault injector) and fall through to the
/// underlying operation otherwise — bit-for-bit the legacy behavior,
/// including when `ctx` is null. Results inserted into the cache are always
/// complete (never taken from an interrupted context).
class TaAlgebra {
 public:
  /// `cache` null means the process-wide TaOpCache::Global().
  explicit TaAlgebra(TaOpCache* cache = nullptr);

  /// True when ops on `ctx` are served through the cache.
  static bool Enabled(const TaOpContext* ctx);

  Result<Dbta> Determinize(const NbtaIndex& a, const RankedAlphabet& sigma,
                           TaOpContext* ctx) const;
  /// The validation fast path's compiled run table (docs/VALIDATION.md):
  /// determinizes `a` and returns the complete DBTA by shared_ptr — a warm
  /// hit hands back the cached table with no copy, which is what lets a
  /// serving batch reuse one table across thousands of documents. Memoized
  /// under kCompiledMembership; uncached contexts get a freshly computed
  /// table.
  Result<std::shared_ptr<const Dbta>> MembershipTable(
      const NbtaIndex& a, const RankedAlphabet& sigma, TaOpContext* ctx) const;
  Result<Nbta> Complement(const NbtaIndex& a, const RankedAlphabet& sigma,
                          TaOpContext* ctx) const;
  Nbta Intersect(const NbtaIndex& a, const NbtaIndex& b,
                 TaOpContext* ctx) const;
  Result<Dbta> Minimize(const Dbta& d, const RankedAlphabet& sigma,
                        TaOpContext* ctx) const;
  /// Antichain inclusion (NbtaIncludedIn, docs/INCLUSION.md) with the
  /// verdict memoized under the kIncludedIn encoding above. The key carries
  /// `max_antichain_pairs` (a verdict under a small cap is replayable under
  /// a larger one, but not vice versa). Counterexamples decoded from a warm
  /// hit are structurally identical to the cold run's (the singleton
  /// language has exactly one witness).
  Result<NbtaInclusionResult> IncludedIn(const NbtaIndex& a,
                                         const NbtaIndex& b,
                                         const RankedAlphabet& sigma,
                                         TaOpContext* ctx) const;

  TaOpCache* cache() const { return cache_; }

 private:
  TaOpCache* cache_;
};

}  // namespace pebbletc

#endif  // PEBBLETC_TA_OP_CACHE_H_
