// Compiled membership: the validation fast path (docs/VALIDATION.md).
//
// The general membership route (NbtaAccepts) tracks a reachable-state bitset
// per tree node — one heap vector<bool> and one rule scan per node. For the
// serving workload ("does this document conform to this schema?", answered
// millions of times per artifact) that is the wrong trade: the automaton is
// fixed, so we can pay determinization ONCE per artifact and then answer
// every instance with a single bottom-up pass doing one O(1) flat-table
// lookup per node (Frisch–Hosoya's practical-typechecking move; the compiled
// DBTA is the Martens–Neven steady-state artifact).
//
// MembershipEngine::Compile determinizes the validating NBTA through
// TaAlgebra (memoized under TaOpKind::kCompiledMembership, so every request
// after the first fetches the table by shared_ptr). When determinization
// exceeds its `max_det_states` budget the engine degrades to the NbtaAccepts
// route — correct, just slower — and says so through the
// `membership_fallbacks` counter; fast-path answers bump
// `membership_fast_hits`. Deadline/cancel interrupts propagate unchanged.
//
// StreamingValidateXml goes one step further for XML instances: it folds the
// DBTA over the parse events directly (a state stack mirroring the element
// stack, with the Section 2.1 encoding applied on the fly), never
// materializing the tree at all — the per-document allocation cost drops to
// the event reader's open-element stack.

#ifndef PEBBLETC_TA_MEMBERSHIP_H_
#define PEBBLETC_TA_MEMBERSHIP_H_

#include <memory>
#include <memory_resource>
#include <string>
#include <string_view>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/ta/nbta.h"
#include "src/ta/nbta_index.h"
#include "src/ta/op_cache.h"
#include "src/ta/op_context.h"
#include "src/tree/binary_tree.h"

namespace pebbletc {

/// A validating automaton compiled for repeated membership queries. Cheap to
/// copy (shared payloads); safe to share across threads once compiled (all
/// queries are const and take their own context).
class MembershipEngine {
 public:
  /// A default-constructed engine is an empty shell (for aggregate members);
  /// it must be assigned from Compile() before Accepts() may be called.
  MembershipEngine() = default;

  /// Compiles `nbta` (over `sigma`) for membership. Determinization runs
  /// through TaAlgebra against `cache` (null = the process-wide cache) under
  /// `ctx`'s budgets; kResourceExhausted degrades to the fallback engine
  /// rather than failing, while kDeadlineExceeded / kCancelled propagate —
  /// the caller's request is over either way.
  static Result<MembershipEngine> Compile(const Nbta& nbta,
                                          const RankedAlphabet& sigma,
                                          TaOpContext* ctx = nullptr,
                                          TaOpCache* cache = nullptr);

  /// Membership of `tree`. Fast path: one table lookup per node into
  /// `scratch` (null = default heap) for the per-node state array. Fallback
  /// path: NbtaAccepts on the shared index. Checkpoints per node, so
  /// deadline/cancel/fault interrupts surface as errors.
  Result<bool> Accepts(const BinaryTree& tree, TaOpContext* ctx = nullptr,
                       std::pmr::memory_resource* scratch = nullptr) const;

  /// True when queries run on the compiled table (false = NbtaAccepts
  /// fallback).
  bool fast() const { return table_ != nullptr; }

  /// The compiled run table, or null for a fallback engine.
  std::shared_ptr<const Dbta> table() const { return table_; }

  const Nbta& nbta() const { return *nbta_; }

 private:
  std::shared_ptr<const Nbta> nbta_;
  std::shared_ptr<const NbtaIndex> index_;  // fallback route
  std::shared_ptr<const Dbta> table_;       // fast route; null = fallback
};

/// Verdict of a streaming validation.
struct StreamVerdict {
  /// Root state accepted. False whenever `unknown_tag` is set.
  bool accepted = false;
  /// First tag (document order) outside the schema alphabet, or empty. The
  /// document is drained for well-formedness either way (a parse error wins
  /// over an unknown tag, matching the tree-materializing route).
  std::string unknown_tag;
};

/// Validates an XML document against a compiled run table without building
/// the tree: folds `table` over the parse events, applying the Section 2.1
/// unranked→binary encoding on the fly via `enc` (tags resolved against
/// `tags`). Parse errors and checkpoint interrupts return as Status errors.
/// `scratch` (null = default heap) backs the state stack.
Result<StreamVerdict> StreamingValidateXml(
    std::string_view xml, const Dbta& table, const EncodedAlphabet& enc,
    const Alphabet& tags, TaOpContext* ctx = nullptr,
    std::pmr::memory_resource* scratch = nullptr);

}  // namespace pebbletc

#endif  // PEBBLETC_TA_MEMBERSHIP_H_
