// Nondeterministic top-down (root-to-frontier) tree automata over complete
// binary trees — Definition 2.1 — including the silent-transition variant of
// Section 2.3 and its elimination construction.
//
// A top-down automaton is A = (Σ, Q, q0, QF, P):
//   * binary transitions (a, q) → (q1, q2) with a ∈ Σ2 spawn branches on the
//     two children;
//   * final symbol-state pairs QF ⊆ Σ0 × Q accept at leaves;
//   * silent transitions (a, q) → q' change state without moving.
// Types in the paper are exactly the languages inst(A) of such automata.

#ifndef PEBBLETC_TA_TOPDOWN_H_
#define PEBBLETC_TA_TOPDOWN_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/status.h"
#include "src/regex/nfa.h"  // for StateId
#include "src/ta/csr.h"
#include "src/ta/op_context.h"
#include "src/tree/binary_tree.h"

namespace pebbletc {

/// A nondeterministic top-down tree automaton, possibly with silent
/// transitions.
struct TopDownTA {
  uint32_t num_states = 0;
  uint32_t num_symbols = 0;
  StateId start = 0;

  /// (a, q) ∈ QF: a branch in state `state` on an `symbol`-leaf accepts.
  struct FinalPair {
    SymbolId symbol;
    StateId state;
  };
  std::vector<FinalPair> final_pairs;

  /// (symbol, from) → (left, right).
  struct BinaryRule {
    SymbolId symbol;
    StateId from;
    StateId left;
    StateId right;
  };
  std::vector<BinaryRule> rules;

  /// (symbol, from) → to, keeping the head in place.
  struct SilentRule {
    SymbolId symbol;
    StateId from;
    StateId to;
  };
  std::vector<SilentRule> silent;

  StateId AddState() { return num_states++; }
  void AddFinalPair(SymbolId symbol, StateId state) {
    final_pairs.push_back({symbol, state});
  }
  void AddRule(SymbolId symbol, StateId from, StateId left, StateId right) {
    rules.push_back({symbol, from, left, right});
  }
  void AddSilent(SymbolId symbol, StateId from, StateId to) {
    silent.push_back({symbol, from, to});
  }

  /// Checks that all state/symbol references are in range and that ranks
  /// match `alphabet` (binary rules on Σ2, final pairs on Σ0).
  Status Validate(const RankedAlphabet& alphabet) const;
};

/// Compiled per-symbol rule buckets for a TopDownTA — the top-down analogue
/// of NbtaIndex (src/ta/nbta_index.h). Build once per automaton and share
/// across operations; the automaton must outlive the index and must not be
/// mutated after indexing.
class TopDownIndex {
 public:
  explicit TopDownIndex(const TopDownTA& a);

  TopDownIndex(const TopDownIndex&) = delete;
  TopDownIndex& operator=(const TopDownIndex&) = delete;

  const TopDownTA& ta() const { return *a_; }

  /// Indices into ta().rules / ta().final_pairs / ta().silent of the entries
  /// labelled `symbol`.
  std::span<const uint32_t> RulesWithSymbol(SymbolId symbol) const {
    return rules_by_symbol_.Row(symbol);
  }
  std::span<const uint32_t> FinalsWithSymbol(SymbolId symbol) const {
    return finals_by_symbol_.Row(symbol);
  }
  std::span<const uint32_t> SilentWithSymbol(SymbolId symbol) const {
    return silent_by_symbol_.Row(symbol);
  }

  /// Sources of silent `symbol`-edges pointing at `to` (the reverse silent
  /// adjacency used by silent-transition elimination). Built lazily on first
  /// use — its row count is |Σ|·|Q| — and only when silent rules exist; not
  /// thread-safe.
  std::span<const StateId> SilentSources(SymbolId symbol, StateId to) const;

 private:
  const TopDownTA* a_;
  Csr<uint32_t> rules_by_symbol_;
  Csr<uint32_t> finals_by_symbol_;
  Csr<uint32_t> silent_by_symbol_;

  mutable bool reverse_silent_built_ = false;
  mutable Csr<StateId> reverse_silent_;
};

/// The Section 2.3 construction: an equivalent automaton with no silent
/// transitions. (Transitions (a,q)→(q1,q2) are added whenever q ⇒*_a q' and
/// (a,q')→(q1,q2); likewise for final pairs.) Does not determinize, so no
/// `max_det_states` budget applies; deadline/cancel checkpoints on `ctx` are
/// the only interruption source. On interruption (checkpoint trip on `ctx`)
/// the elimination drains early with a sound-but-incomplete automaton;
/// callers check TaInterruptStatus(ctx) for the kDeadlineExceeded /
/// kCancelled verdict rather than trusting the partial result.
TopDownTA EliminateSilentTransitions(const TopDownTA& a,
                                     TaOpContext* ctx = nullptr);
TopDownTA EliminateSilentTransitions(const TopDownIndex& a,
                                     TaOpContext* ctx = nullptr);

/// Direct acceptance check via alternating-graph accessibility on the
/// configuration space (state × node) — handles silent transitions without
/// determinizing or eliminating them, so no budget applies and the check
/// cannot fail. The TopDownTA overload compiles a throwaway index; prefer
/// the TopDownIndex form when checking several trees against one automaton.
bool TopDownAccepts(const TopDownTA& a, const BinaryTree& tree);
bool TopDownAccepts(const TopDownIndex& a, const BinaryTree& tree);

}  // namespace pebbletc

#endif  // PEBBLETC_TA_TOPDOWN_H_
