#include "src/ta/serialize.h"

#include <cstring>

namespace pebbletc {

namespace {

void PutU32(uint32_t v, std::string* out) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(b, 4);
}

void PutBits(const std::vector<bool>& bits, std::string* out) {
  uint8_t acc = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) acc |= static_cast<uint8_t>(1u << (i % 8));
    if (i % 8 == 7) {
      out->push_back(static_cast<char>(acc));
      acc = 0;
    }
  }
  if (bits.size() % 8 != 0) out->push_back(static_cast<char>(acc));
}

// Bounds-checked little-endian reader over the input view.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  Status ReadU32(uint32_t* v) {
    if (bytes_.size() - pos_ < 4) {
      return Status::ParseError("binary automaton truncated");
    }
    const auto* p = reinterpret_cast<const unsigned char*>(bytes_.data() + pos_);
    *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    pos_ += 4;
    return Status::OK();
  }

  Status ReadBits(size_t n, std::vector<bool>* bits) {
    const size_t nbytes = (n + 7) / 8;
    if (bytes_.size() - pos_ < nbytes) {
      return Status::ParseError("binary automaton truncated");
    }
    bits->assign(n, false);
    for (size_t i = 0; i < n; ++i) {
      const auto byte =
          static_cast<unsigned char>(bytes_[pos_ + i / 8]);
      (*bits)[i] = (byte >> (i % 8)) & 1;
    }
    // Spare bits in the final byte must be zero, so the encoding is unique
    // and the payload checksum is well-defined.
    if (n % 8 != 0) {
      const auto last = static_cast<unsigned char>(bytes_[pos_ + nbytes - 1]);
      if ((last >> (n % 8)) != 0) {
        return Status::ParseError("nonzero padding in accepting bitset");
      }
    }
    pos_ += nbytes;
    return Status::OK();
  }

  Status Done() const {
    if (pos_ != bytes_.size()) {
      return Status::ParseError("trailing bytes after binary automaton");
    }
    return Status::OK();
  }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

void SerializeNbta(const Nbta& a, std::string* out) {
  PutU32(a.num_states, out);
  PutU32(a.num_symbols, out);
  PutBits(a.accepting, out);
  PutU32(static_cast<uint32_t>(a.leaf_rules.size()), out);
  for (const Nbta::LeafRule& r : a.leaf_rules) {
    PutU32(r.symbol, out);
    PutU32(r.to, out);
  }
  PutU32(static_cast<uint32_t>(a.rules.size()), out);
  for (const Nbta::BinaryRule& r : a.rules) {
    PutU32(r.symbol, out);
    PutU32(r.left, out);
    PutU32(r.right, out);
    PutU32(r.to, out);
  }
}

void SerializeDbta(const Dbta& d, std::string* out) {
  PutU32(d.num_states(), out);
  PutU32(d.num_symbols(), out);
  std::vector<bool> acc(d.num_states());
  for (StateId q = 0; q < d.num_states(); ++q) acc[q] = d.accepting(q);
  PutBits(acc, out);
  for (SymbolId s = 0; s < d.num_symbols(); ++s) PutU32(d.LeafState(s), out);
  for (SymbolId s = 0; s < d.num_symbols(); ++s) {
    for (StateId l = 0; l < d.num_states(); ++l) {
      for (StateId r = 0; r < d.num_states(); ++r) {
        PutU32(d.Next(s, l, r), out);
      }
    }
  }
}

Result<Nbta> DeserializeNbta(std::string_view bytes) {
  Reader in(bytes);
  Nbta a;
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&a.num_states));
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&a.num_symbols));
  PEBBLETC_RETURN_IF_ERROR(in.ReadBits(a.num_states, &a.accepting));
  uint32_t n_leaf = 0;
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&n_leaf));
  a.leaf_rules.reserve(n_leaf);
  for (uint32_t i = 0; i < n_leaf; ++i) {
    Nbta::LeafRule r;
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&r.symbol));
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&r.to));
    if (r.symbol >= a.num_symbols || r.to >= a.num_states) {
      return Status::ParseError("leaf rule out of range");
    }
    a.leaf_rules.push_back(r);
  }
  uint32_t n_rules = 0;
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&n_rules));
  a.rules.reserve(n_rules);
  for (uint32_t i = 0; i < n_rules; ++i) {
    Nbta::BinaryRule r;
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&r.symbol));
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&r.left));
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&r.right));
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&r.to));
    if (r.symbol >= a.num_symbols || r.left >= a.num_states ||
        r.right >= a.num_states || r.to >= a.num_states) {
      return Status::ParseError("binary rule out of range");
    }
    a.rules.push_back(r);
  }
  PEBBLETC_RETURN_IF_ERROR(in.Done());
  return a;
}

Result<Dbta> DeserializeDbta(std::string_view bytes) {
  Reader in(bytes);
  uint32_t num_states = 0, num_symbols = 0;
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&num_states));
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&num_symbols));
  if (num_states == 0) {
    return Status::ParseError("deterministic automaton needs >= 1 state");
  }
  Dbta d(num_states, num_symbols);
  std::vector<bool> acc;
  PEBBLETC_RETURN_IF_ERROR(in.ReadBits(num_states, &acc));
  for (StateId q = 0; q < num_states; ++q) d.set_accepting(q, acc[q]);
  for (SymbolId s = 0; s < num_symbols; ++s) {
    uint32_t q = 0;
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&q));
    if (q >= num_states) return Status::ParseError("leaf state out of range");
    d.SetLeafState(s, q);
  }
  for (SymbolId s = 0; s < num_symbols; ++s) {
    for (StateId l = 0; l < num_states; ++l) {
      for (StateId r = 0; r < num_states; ++r) {
        uint32_t to = 0;
        PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&to));
        if (to >= num_states) {
          return Status::ParseError("transition out of range");
        }
        d.SetNext(s, l, r, to);
      }
    }
  }
  PEBBLETC_RETURN_IF_ERROR(in.Done());
  return d;
}

uint64_t TaPayloadChecksum(std::string_view bytes) {
  uint64_t h = 1469598103934665603ull;
  for (char c : bytes) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  }
  return h;
}

}  // namespace pebbletc
