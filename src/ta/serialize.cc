#include "src/ta/serialize.h"

#include <cstring>
#include <utility>
#include <vector>

#include "src/regex/regex.h"

namespace pebbletc {

namespace {

void PutU8(uint8_t v, std::string* out) { out->push_back(static_cast<char>(v)); }

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU32(uint32_t v, std::string* out) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(b, 4);
}

void PutBits(const std::vector<bool>& bits, std::string* out) {
  uint8_t acc = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) acc |= static_cast<uint8_t>(1u << (i % 8));
    if (i % 8 == 7) {
      out->push_back(static_cast<char>(acc));
      acc = 0;
    }
  }
  if (bits.size() % 8 != 0) out->push_back(static_cast<char>(acc));
}

void PutString(std::string_view s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s.data(), s.size());
}

// Caps on variable-length sections of the artifact formats. Inputs crossing
// the service trust boundary may be adversarial, so every count read from
// the wire is bounded before a single element is allocated.
constexpr uint32_t kMaxNameBytes = 1024;
constexpr uint32_t kMaxAlphabetSymbols = 1u << 20;
constexpr uint32_t kMaxRegexNodes = 1u << 16;

// Bounds-checked little-endian reader over the input view.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  Status ReadU8(uint8_t* v) {
    if (bytes_.size() - pos_ < 1) {
      return Status::ParseError("binary artifact truncated");
    }
    *v = static_cast<uint8_t>(bytes_[pos_++]);
    return Status::OK();
  }

  Status ReadU64(uint64_t* v) {
    if (bytes_.size() - pos_ < 8) {
      return Status::ParseError("binary artifact truncated");
    }
    const auto* p = reinterpret_cast<const unsigned char*>(bytes_.data() + pos_);
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(p[i]) << (8 * i);
    pos_ += 8;
    return Status::OK();
  }

  Status ReadString(uint32_t max_bytes, std::string* s) {
    uint32_t n = 0;
    PEBBLETC_RETURN_IF_ERROR(ReadU32(&n));
    if (n > max_bytes) {
      return Status::ParseError("string field exceeds cap of " +
                                std::to_string(max_bytes) + " bytes");
    }
    if (bytes_.size() - pos_ < n) {
      return Status::ParseError("binary artifact truncated");
    }
    s->assign(bytes_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Status ReadU32(uint32_t* v) {
    if (bytes_.size() - pos_ < 4) {
      return Status::ParseError("binary automaton truncated");
    }
    const auto* p = reinterpret_cast<const unsigned char*>(bytes_.data() + pos_);
    *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    pos_ += 4;
    return Status::OK();
  }

  Status ReadBits(size_t n, std::vector<bool>* bits) {
    const size_t nbytes = (n + 7) / 8;
    if (bytes_.size() - pos_ < nbytes) {
      return Status::ParseError("binary automaton truncated");
    }
    bits->assign(n, false);
    for (size_t i = 0; i < n; ++i) {
      const auto byte =
          static_cast<unsigned char>(bytes_[pos_ + i / 8]);
      (*bits)[i] = (byte >> (i % 8)) & 1;
    }
    // Spare bits in the final byte must be zero, so the encoding is unique
    // and the payload checksum is well-defined.
    if (n % 8 != 0) {
      const auto last = static_cast<unsigned char>(bytes_[pos_ + nbytes - 1]);
      if ((last >> (n % 8)) != 0) {
        return Status::ParseError("nonzero padding in accepting bitset");
      }
    }
    pos_ += nbytes;
    return Status::OK();
  }

  Status Done() const {
    if (pos_ != bytes_.size()) {
      return Status::ParseError("trailing bytes after binary automaton");
    }
    return Status::OK();
  }

  /// Bytes left to read. Any count field claiming more elements than the
  /// remaining input can encode is malformed, and must be rejected before
  /// the elements are allocated.
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

void SerializeNbta(const Nbta& a, std::string* out) {
  PutU32(a.num_states, out);
  PutU32(a.num_symbols, out);
  PutBits(a.accepting, out);
  PutU32(static_cast<uint32_t>(a.leaf_rules.size()), out);
  for (const Nbta::LeafRule& r : a.leaf_rules) {
    PutU32(r.symbol, out);
    PutU32(r.to, out);
  }
  PutU32(static_cast<uint32_t>(a.rules.size()), out);
  for (const Nbta::BinaryRule& r : a.rules) {
    PutU32(r.symbol, out);
    PutU32(r.left, out);
    PutU32(r.right, out);
    PutU32(r.to, out);
  }
}

void SerializeDbta(const Dbta& d, std::string* out) {
  PutU32(d.num_states(), out);
  PutU32(d.num_symbols(), out);
  std::vector<bool> acc(d.num_states());
  for (StateId q = 0; q < d.num_states(); ++q) acc[q] = d.accepting(q);
  PutBits(acc, out);
  for (SymbolId s = 0; s < d.num_symbols(); ++s) PutU32(d.LeafState(s), out);
  for (SymbolId s = 0; s < d.num_symbols(); ++s) {
    for (StateId l = 0; l < d.num_states(); ++l) {
      for (StateId r = 0; r < d.num_states(); ++r) {
        PutU32(d.Next(s, l, r), out);
      }
    }
  }
}

namespace {

Status ReadNbtaBody(Reader& in, Nbta* a) {
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&a->num_states));
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&a->num_symbols));
  PEBBLETC_RETURN_IF_ERROR(in.ReadBits(a->num_states, &a->accepting));
  uint32_t n_leaf = 0;
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&n_leaf));
  // A leaf rule occupies 8 wire bytes, so a count the remaining input cannot
  // hold is a lie — reject it before reserving, or a 2 MiB payload claiming
  // 0xFFFFFFFF rules would force a ~68 GB allocation.
  if (n_leaf > in.remaining() / 8) {
    return Status::ParseError("leaf rule count exceeds the remaining input");
  }
  a->leaf_rules.reserve(n_leaf);
  for (uint32_t i = 0; i < n_leaf; ++i) {
    Nbta::LeafRule r;
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&r.symbol));
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&r.to));
    if (r.symbol >= a->num_symbols || r.to >= a->num_states) {
      return Status::ParseError("leaf rule out of range");
    }
    a->leaf_rules.push_back(r);
  }
  uint32_t n_rules = 0;
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&n_rules));
  // Same bound for binary rules, at 16 wire bytes each.
  if (n_rules > in.remaining() / 16) {
    return Status::ParseError("binary rule count exceeds the remaining input");
  }
  a->rules.reserve(n_rules);
  for (uint32_t i = 0; i < n_rules; ++i) {
    Nbta::BinaryRule r;
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&r.symbol));
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&r.left));
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&r.right));
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&r.to));
    if (r.symbol >= a->num_symbols || r.left >= a->num_states ||
        r.right >= a->num_states || r.to >= a->num_states) {
      return Status::ParseError("binary rule out of range");
    }
    a->rules.push_back(r);
  }
  return Status::OK();
}

}  // namespace

Result<Nbta> DeserializeNbta(std::string_view bytes) {
  Reader in(bytes);
  Nbta a;
  PEBBLETC_RETURN_IF_ERROR(ReadNbtaBody(in, &a));
  PEBBLETC_RETURN_IF_ERROR(in.Done());
  return a;
}

Result<Dbta> DeserializeDbta(std::string_view bytes) {
  Reader in(bytes);
  uint32_t num_states = 0, num_symbols = 0;
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&num_states));
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&num_symbols));
  if (num_states == 0) {
    return Status::ParseError("deterministic automaton needs >= 1 state");
  }
  // The constructor allocates an accepting bitset (1 bit per state), a leaf
  // table (4 bytes per symbol on the wire) and a num_symbols * num_states^2
  // transition table (4 bytes per entry on the wire). Bound each dimension
  // by what the remaining input can actually encode before any object
  // exists, so an 8-byte hostile header can neither demand an astronomical
  // allocation nor overflow the 64-bit table-size product.
  const uint64_t remaining = in.remaining();
  if ((static_cast<uint64_t>(num_states) + 7) / 8 > remaining) {
    return Status::ParseError("automaton state count exceeds the input size");
  }
  if (num_symbols > remaining / 4) {
    return Status::ParseError("automaton symbol count exceeds the input size");
  }
  const uint64_t states_sq = static_cast<uint64_t>(num_states) * num_states;
  const uint64_t max_entries = remaining / 4;
  if (num_symbols > 0 && states_sq > max_entries / num_symbols) {
    return Status::ParseError(
        "automaton transition table exceeds the input size");
  }
  Dbta d(num_states, num_symbols);
  std::vector<bool> acc;
  PEBBLETC_RETURN_IF_ERROR(in.ReadBits(num_states, &acc));
  for (StateId q = 0; q < num_states; ++q) d.set_accepting(q, acc[q]);
  for (SymbolId s = 0; s < num_symbols; ++s) {
    uint32_t q = 0;
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&q));
    if (q >= num_states) return Status::ParseError("leaf state out of range");
    d.SetLeafState(s, q);
  }
  for (SymbolId s = 0; s < num_symbols; ++s) {
    for (StateId l = 0; l < num_states; ++l) {
      for (StateId r = 0; r < num_states; ++r) {
        uint32_t to = 0;
        PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&to));
        if (to >= num_states) {
          return Status::ParseError("transition out of range");
        }
        d.SetNext(s, l, r, to);
      }
    }
  }
  PEBBLETC_RETURN_IF_ERROR(in.Done());
  return d;
}

uint64_t TaPayloadChecksum(std::string_view bytes) {
  uint64_t h = 1469598103934665603ull;
  for (char c : bytes) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Ranked alphabets.
// ---------------------------------------------------------------------------

void SerializeRankedAlphabet(const RankedAlphabet& alphabet, std::string* out) {
  PutU32(static_cast<uint32_t>(alphabet.size()), out);
  for (SymbolId s = 0; s < alphabet.size(); ++s) {
    PutU8(static_cast<uint8_t>(alphabet.Rank(s)), out);
    PutString(alphabet.Name(s), out);
  }
}

namespace {

Status ReadRankedAlphabet(Reader& in, RankedAlphabet* alphabet) {
  uint32_t n = 0;
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&n));
  if (n > kMaxAlphabetSymbols) {
    return Status::ParseError("alphabet symbol count exceeds cap");
  }
  for (uint32_t i = 0; i < n; ++i) {
    uint8_t rank = 0;
    std::string name;
    PEBBLETC_RETURN_IF_ERROR(in.ReadU8(&rank));
    PEBBLETC_RETURN_IF_ERROR(in.ReadString(kMaxNameBytes, &name));
    if (rank != 0 && rank != 2) {
      return Status::ParseError("alphabet symbol rank must be 0 or 2");
    }
    if (name.empty()) return Status::ParseError("empty alphabet symbol name");
    Result<SymbolId> added = rank == 0 ? alphabet->AddLeaf(name)
                                       : alphabet->AddBinary(name);
    if (!added.ok()) {
      return Status::ParseError("alphabet rejected symbol '" + name +
                                "': " + added.status().ToString());
    }
    if (*added != i) {
      return Status::ParseError("duplicate alphabet symbol '" + name + "'");
    }
  }
  return Status::OK();
}

}  // namespace

Result<RankedAlphabet> DeserializeRankedAlphabet(std::string_view bytes) {
  Reader in(bytes);
  RankedAlphabet alphabet;
  PEBBLETC_RETURN_IF_ERROR(ReadRankedAlphabet(in, &alphabet));
  PEBBLETC_RETURN_IF_ERROR(in.Done());
  return alphabet;
}

// ---------------------------------------------------------------------------
// Regex ASTs (DTD content models): postorder node records, arity-checked on
// read so a hostile stream can never underflow the build stack, with node-
// count and depth caps so it cannot blow memory or the (recursive) AST
// destructor either.
// ---------------------------------------------------------------------------

namespace {

// Wire-stable kind codes (do not renumber).
constexpr uint8_t kRegexEmptySet = 0;
constexpr uint8_t kRegexEpsilon = 1;
constexpr uint8_t kRegexSymbol = 2;
constexpr uint8_t kRegexConcat = 3;
constexpr uint8_t kRegexUnion = 4;
constexpr uint8_t kRegexStar = 5;

void WriteRegex(const RegexPtr& r, std::string* out) {
  // Count then emit, both via explicit postorder stacks (ASTs can be ~2000
  // deep, past safe recursion under sanitizers).
  uint32_t count = 0;
  std::vector<const Regex*> stack = {r.get()};
  while (!stack.empty()) {
    const Regex* node = stack.back();
    stack.pop_back();
    ++count;
    if (node->left() != nullptr) stack.push_back(node->left().get());
    if (node->right() != nullptr) stack.push_back(node->right().get());
  }
  PutU32(count, out);

  // Postorder emission: (node, children-emitted) pairs.
  std::vector<std::pair<const Regex*, bool>> walk = {{r.get(), false}};
  while (!walk.empty()) {
    auto [node, expanded] = walk.back();
    walk.pop_back();
    if (!expanded) {
      walk.push_back({node, true});
      if (node->right() != nullptr) walk.push_back({node->right().get(), false});
      if (node->left() != nullptr) walk.push_back({node->left().get(), false});
      continue;
    }
    switch (node->kind()) {
      case Regex::Kind::kEmptySet:
        PutU8(kRegexEmptySet, out);
        break;
      case Regex::Kind::kEpsilon:
        PutU8(kRegexEpsilon, out);
        break;
      case Regex::Kind::kSymbol:
        PutU8(kRegexSymbol, out);
        PutU32(node->symbol(), out);
        break;
      case Regex::Kind::kConcat:
        PutU8(kRegexConcat, out);
        break;
      case Regex::Kind::kUnion:
        PutU8(kRegexUnion, out);
        break;
      case Regex::Kind::kStar:
        PutU8(kRegexStar, out);
        break;
    }
  }
}

Status ReadRegex(Reader& in, uint32_t num_symbols, RegexPtr* out) {
  uint32_t n_nodes = 0;
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&n_nodes));
  if (n_nodes == 0) return Status::ParseError("regex with zero nodes");
  if (n_nodes > kMaxRegexNodes) {
    return Status::ParseError("regex node count exceeds cap");
  }
  // Build stack of (subtree, depth). The factories may simplify (identities
  // with ∅/ε), so the rebuilt AST is at most as deep as the declared one.
  std::vector<std::pair<RegexPtr, size_t>> stack;
  for (uint32_t i = 0; i < n_nodes; ++i) {
    uint8_t kind = 0;
    PEBBLETC_RETURN_IF_ERROR(in.ReadU8(&kind));
    switch (kind) {
      case kRegexEmptySet:
        stack.push_back({Regex::EmptySet(), 1});
        break;
      case kRegexEpsilon:
        stack.push_back({Regex::Epsilon(), 1});
        break;
      case kRegexSymbol: {
        uint32_t sym = 0;
        PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&sym));
        if (sym >= num_symbols) {
          return Status::ParseError("regex symbol out of range");
        }
        stack.push_back({Regex::Symbol(sym), 1});
        break;
      }
      case kRegexStar: {
        if (stack.empty()) {
          return Status::ParseError("regex star with no operand");
        }
        auto [body, depth] = std::move(stack.back());
        stack.pop_back();
        stack.push_back({Regex::Star(std::move(body)), depth + 1});
        break;
      }
      case kRegexConcat:
      case kRegexUnion: {
        if (stack.size() < 2) {
          return Status::ParseError("regex binary operator with <2 operands");
        }
        auto [rhs, rdepth] = std::move(stack.back());
        stack.pop_back();
        auto [lhs, ldepth] = std::move(stack.back());
        stack.pop_back();
        RegexPtr combined = kind == kRegexConcat
                                ? Regex::Concat(std::move(lhs), std::move(rhs))
                                : Regex::Union(std::move(lhs), std::move(rhs));
        stack.push_back({std::move(combined), 1 + std::max(ldepth, rdepth)});
        break;
      }
      default:
        return Status::ParseError("unknown regex node kind");
    }
    if (stack.back().second > kDefaultMaxRegexDepth) {
      return Status::ParseError("regex deeper than the parser depth cap");
    }
  }
  if (stack.size() != 1) {
    return Status::ParseError("regex stream leaves " +
                              std::to_string(stack.size()) +
                              " roots (expected 1)");
  }
  *out = std::move(stack.back().first);
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Transducer artifacts.
// ---------------------------------------------------------------------------

void SerializeTransducerArtifact(const TransducerArtifact& artifact,
                                 std::string* out) {
  const PebbleTransducer& t = artifact.transducer;
  PutU32(t.max_pebbles(), out);
  SerializeRankedAlphabet(artifact.input_alphabet, out);
  SerializeRankedAlphabet(artifact.output_alphabet, out);
  PutU32(t.num_states(), out);
  for (StateId q = 0; q < t.num_states(); ++q) PutU32(t.level(q), out);
  PutU32(t.start(), out);
  PutU32(static_cast<uint32_t>(t.transitions().size()), out);
  for (const PebbleTransducer::Transition& tr : t.transitions()) {
    PutU8(static_cast<uint8_t>(tr.kind), out);
    PutU32(tr.guard.symbol, out);
    PutU32(tr.guard.presence_mask, out);
    PutU32(tr.guard.presence_value, out);
    PutU32(tr.from, out);
    PutU8(static_cast<uint8_t>(tr.move), out);
    PutU32(tr.to, out);
    PutU32(tr.output_symbol, out);
    PutU32(tr.out_left, out);
    PutU32(tr.out_right, out);
  }
}

Result<TransducerArtifact> DeserializeTransducerArtifact(
    std::string_view bytes) {
  using Kind = PebbleTransducer::TransitionKind;
  using Move = PebbleTransducer::MoveKind;
  Reader in(bytes);
  uint32_t max_pebbles = 0;
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&max_pebbles));
  // The PebbleTransducer constructor CHECK-crashes outside [1, 30], so the
  // range is enforced here, before any object exists.
  if (max_pebbles < 1 || max_pebbles > 30) {
    return Status::ParseError("transducer max_pebbles out of [1, 30]");
  }
  TransducerArtifact artifact;
  PEBBLETC_RETURN_IF_ERROR(ReadRankedAlphabet(in, &artifact.input_alphabet));
  PEBBLETC_RETURN_IF_ERROR(ReadRankedAlphabet(in, &artifact.output_alphabet));
  uint32_t num_states = 0;
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&num_states));
  if (num_states == 0) return Status::ParseError("transducer has no states");
  if (num_states > kMaxAlphabetSymbols) {
    return Status::ParseError("transducer state count exceeds cap");
  }
  std::vector<uint32_t> levels(num_states);
  for (uint32_t q = 0; q < num_states; ++q) {
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&levels[q]));
    if (levels[q] < 1 || levels[q] > max_pebbles) {
      return Status::ParseError("transducer state level out of range");
    }
  }
  uint32_t start = 0;
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&start));
  if (start >= num_states) {
    return Status::ParseError("transducer start state out of range");
  }
  uint32_t n_transitions = 0;
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&n_transitions));
  if (n_transitions > (1u << 22)) {
    return Status::ParseError("transducer transition count exceeds cap");
  }

  PebbleTransducer t(max_pebbles,
                     static_cast<uint32_t>(artifact.input_alphabet.size()),
                     static_cast<uint32_t>(artifact.output_alphabet.size()));
  for (uint32_t q = 0; q < num_states; ++q) (void)t.AddState(levels[q]);
  t.SetStart(start);

  for (uint32_t i = 0; i < n_transitions; ++i) {
    uint8_t kind_byte = 0, move_byte = 0;
    PebbleGuard guard;
    uint32_t from = 0, to = 0, out_symbol = 0, out_left = 0, out_right = 0;
    PEBBLETC_RETURN_IF_ERROR(in.ReadU8(&kind_byte));
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&guard.symbol));
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&guard.presence_mask));
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&guard.presence_value));
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&from));
    PEBBLETC_RETURN_IF_ERROR(in.ReadU8(&move_byte));
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&to));
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&out_symbol));
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&out_left));
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&out_right));
    if (kind_byte > static_cast<uint8_t>(Kind::kOutputBinary)) {
      return Status::ParseError("unknown transducer transition kind");
    }
    if (move_byte > static_cast<uint8_t>(Move::kPickPebble)) {
      return Status::ParseError("unknown transducer move kind");
    }
    if (from >= num_states) {
      return Status::ParseError("transition from-state out of range");
    }
    // Fields a kind does not use must hold the canonical values the
    // mutators write — the encoding is unique, so checksums are meaningful.
    switch (static_cast<Kind>(kind_byte)) {
      case Kind::kMove:
        if (to >= num_states) {
          return Status::ParseError("move to-state out of range");
        }
        if (out_symbol != kNoSymbol || out_left != 0 || out_right != 0) {
          return Status::ParseError("move transition with output payload");
        }
        t.AddMove(guard, from, static_cast<Move>(move_byte), to);
        break;
      case Kind::kOutputLeaf:
        if (move_byte != 0 || to != 0 || out_left != 0 || out_right != 0) {
          return Status::ParseError("leaf output with non-canonical padding");
        }
        t.AddOutputLeaf(guard, from, out_symbol);
        break;
      case Kind::kOutputBinary:
        if (move_byte != 0 || to != 0) {
          return Status::ParseError(
              "binary output with non-canonical padding");
        }
        if (out_left >= num_states || out_right >= num_states) {
          return Status::ParseError("output branch state out of range");
        }
        t.AddOutputBinary(guard, from, out_symbol, out_left, out_right);
        break;
    }
  }
  PEBBLETC_RETURN_IF_ERROR(in.Done());

  // Semantic validation (level discipline per move, guard masks vs state
  // level, output symbol ranks) — a machine failing it is a malformed
  // artifact, not a usable transducer.
  Status valid =
      t.Validate(artifact.input_alphabet, artifact.output_alphabet);
  if (!valid.ok()) {
    return Status::ParseError("transducer artifact failed validation: " +
                              valid.ToString());
  }
  artifact.transducer = std::move(t);
  return artifact;
}

// ---------------------------------------------------------------------------
// DTD artifacts.
// ---------------------------------------------------------------------------

void SerializeDtdArtifact(const SpecializedDtd& dtd, std::string* out) {
  PutU32(static_cast<uint32_t>(dtd.tags().size()), out);
  for (SymbolId tag = 0; tag < dtd.tags().size(); ++tag) {
    PutString(dtd.tags().Name(tag), out);
  }
  PutU32(static_cast<uint32_t>(dtd.num_types()), out);
  for (SymbolId type = 0; type < dtd.num_types(); ++type) {
    PutString(dtd.types().Name(type), out);
    PutU32(dtd.TagOfType(type), out);
    WriteRegex(dtd.ContentModel(type), out);
  }
  PutU32(static_cast<uint32_t>(dtd.root_types().size()), out);
  for (SymbolId root : dtd.root_types()) PutU32(root, out);
}

Result<SpecializedDtd> DeserializeDtdArtifact(std::string_view bytes) {
  Reader in(bytes);
  uint32_t n_tags = 0;
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&n_tags));
  if (n_tags > kMaxAlphabetSymbols) {
    return Status::ParseError("DTD tag count exceeds cap");
  }
  std::vector<std::string> tag_names(n_tags);
  for (uint32_t i = 0; i < n_tags; ++i) {
    PEBBLETC_RETURN_IF_ERROR(in.ReadString(kMaxNameBytes, &tag_names[i]));
    if (tag_names[i].empty()) return Status::ParseError("empty DTD tag name");
  }
  uint32_t n_types = 0;
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&n_types));
  if (n_types == 0) return Status::ParseError("DTD declares no types");
  if (n_types > kMaxAlphabetSymbols) {
    return Status::ParseError("DTD type count exceeds cap");
  }

  SpecializedDtd dtd;
  // Intern the whole tag table first so ids survive the round trip exactly
  // (the table may hold tags beyond those named by types, and in any order).
  for (uint32_t i = 0; i < n_tags; ++i) {
    if (dtd.mutable_tags()->Intern(tag_names[i]) != i) {
      return Status::ParseError("duplicate DTD tag '" + tag_names[i] + "'");
    }
  }
  for (uint32_t type = 0; type < n_types; ++type) {
    std::string type_name;
    uint32_t tag_id = 0;
    RegexPtr content;
    PEBBLETC_RETURN_IF_ERROR(in.ReadString(kMaxNameBytes, &type_name));
    if (type_name.empty()) return Status::ParseError("empty DTD type name");
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&tag_id));
    if (tag_id >= n_tags) {
      return Status::ParseError("DTD type names a tag out of range");
    }
    // Content models range over the *type* alphabet.
    PEBBLETC_RETURN_IF_ERROR(ReadRegex(in, n_types, &content));
    Result<SymbolId> added =
        dtd.AddType(type_name, tag_names[tag_id], std::move(content));
    if (!added.ok()) {
      return Status::ParseError("DTD rejected type '" + type_name +
                                "': " + added.status().ToString());
    }
  }
  uint32_t n_roots = 0;
  PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&n_roots));
  if (n_roots > n_types) {
    return Status::ParseError("DTD root list longer than the type list");
  }
  for (uint32_t i = 0; i < n_roots; ++i) {
    uint32_t root = 0;
    PEBBLETC_RETURN_IF_ERROR(in.ReadU32(&root));
    Status s = dtd.AddRootType(root);
    if (!s.ok()) return Status::ParseError("DTD root: " + s.ToString());
  }
  PEBBLETC_RETURN_IF_ERROR(in.Done());
  Status finalized = dtd.Finalize();
  if (!finalized.ok()) {
    return Status::ParseError("DTD artifact failed to finalize: " +
                              finalized.ToString());
  }
  return dtd;
}

// ---------------------------------------------------------------------------
// Schema artifacts.
// ---------------------------------------------------------------------------

void SerializeSchemaArtifact(const SchemaArtifact& artifact, std::string* out) {
  SerializeRankedAlphabet(artifact.alphabet, out);
  SerializeNbta(artifact.automaton, out);
}

Result<SchemaArtifact> DeserializeSchemaArtifact(std::string_view bytes) {
  Reader in(bytes);
  SchemaArtifact artifact;
  PEBBLETC_RETURN_IF_ERROR(ReadRankedAlphabet(in, &artifact.alphabet));
  PEBBLETC_RETURN_IF_ERROR(ReadNbtaBody(in, &artifact.automaton));
  PEBBLETC_RETURN_IF_ERROR(in.Done());
  Status valid = artifact.automaton.Validate(artifact.alphabet);
  if (!valid.ok()) {
    return Status::ParseError("schema artifact failed validation: " +
                              valid.ToString());
  }
  return artifact;
}

// ---------------------------------------------------------------------------
// The versioned artifact container.
// ---------------------------------------------------------------------------

namespace {

constexpr char kArtifactMagic[4] = {'P', 'T', 'A', 'R'};
constexpr size_t kArtifactHeaderBytes = 4 + 1 + 1 + 8;

}  // namespace

void WrapTaArtifact(TaArtifactKind kind, std::string_view payload,
                    std::string* out) {
  out->append(kArtifactMagic, 4);
  PutU8(kTaArtifactVersion, out);
  PutU8(static_cast<uint8_t>(kind), out);
  PutU64(TaPayloadChecksum(payload), out);
  out->append(payload.data(), payload.size());
}

Result<TaArtifactView> UnwrapTaArtifact(std::string_view bytes) {
  if (bytes.size() < kArtifactHeaderBytes) {
    return Status::ParseError("artifact shorter than its header");
  }
  if (std::memcmp(bytes.data(), kArtifactMagic, 4) != 0) {
    return Status::ParseError("not a pebbletc artifact (bad magic)");
  }
  const auto version = static_cast<uint8_t>(bytes[4]);
  if (version != kTaArtifactVersion) {
    return Status::ParseError("unsupported artifact version " +
                              std::to_string(version));
  }
  const auto kind_byte = static_cast<uint8_t>(bytes[5]);
  if (kind_byte > static_cast<uint8_t>(TaArtifactKind::kSchema)) {
    return Status::ParseError("unknown artifact kind " +
                              std::to_string(kind_byte));
  }
  uint64_t checksum = 0;
  for (int i = 0; i < 8; ++i) {
    checksum |= static_cast<uint64_t>(static_cast<unsigned char>(bytes[6 + i]))
                << (8 * i);
  }
  std::string_view payload = bytes.substr(kArtifactHeaderBytes);
  if (TaPayloadChecksum(payload) != checksum) {
    return Status::ParseError("artifact payload checksum mismatch");
  }
  TaArtifactView view;
  view.kind = static_cast<TaArtifactKind>(kind_byte);
  view.payload = payload;
  return view;
}

}  // namespace pebbletc
