// Random tree-automaton generation for property tests.

#ifndef PEBBLETC_TA_RANDOM_TA_H_
#define PEBBLETC_TA_RANDOM_TA_H_

#include "src/alphabet/alphabet.h"
#include "src/common/rng.h"
#include "src/ta/nbta.h"

namespace pebbletc {

struct RandomNbtaOptions {
  uint32_t num_states = 3;
  /// Expected number of binary rules per (binary symbol, state-pair) slot is
  /// rule_density; leaf rules likewise.
  double rule_density = 0.3;
  double leaf_density = 0.5;
  double accepting_density = 0.4;
};

/// Draws a random NBTA over `alphabet`; at least one leaf rule and one
/// accepting state are guaranteed so the automaton is never trivially
/// degenerate (though its language may still be empty).
Nbta RandomNbta(const RankedAlphabet& alphabet, Rng& rng,
                const RandomNbtaOptions& options);

}  // namespace pebbletc

#endif  // PEBBLETC_TA_RANDOM_TA_H_
