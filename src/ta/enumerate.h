// Enumeration of the trees accepted by a bottom-up automaton, smallest
// first. Used to enumerate transducer outputs T(t) via the Prop. 3.8
// automaton A_t, and by the bounded counterexample search of the typechecker.

#ifndef PEBBLETC_TA_ENUMERATE_H_
#define PEBBLETC_TA_ENUMERATE_H_

#include <cstddef>
#include <vector>

#include "src/ta/nbta.h"
#include "src/ta/op_context.h"
#include "src/tree/binary_tree.h"

namespace pebbletc {

/// Returns distinct accepted trees with at most `max_nodes` nodes, ordered by
/// node count (ties in unspecified but deterministic order), stopping after
/// `max_count` trees. The enumeration is exact: it returns *all* accepted
/// trees within the bounds unless truncated by `max_count` — or interrupted
/// via a `ctx` checkpoint, in which case the (genuine) trees found so far are
/// returned and TaInterruptStatus(ctx) reports why the enumeration stopped.
std::vector<BinaryTree> EnumerateAcceptedTrees(const Nbta& a, size_t max_nodes,
                                               size_t max_count,
                                               TaOpContext* ctx = nullptr);

}  // namespace pebbletc

#endif  // PEBBLETC_TA_ENUMERATE_H_
