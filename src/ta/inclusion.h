// Antichain-based on-the-fly language inclusion for bottom-up tree automata.
//
// The Theorem 4.4 pipeline decides inst(A) ⊆ inst(B) the heavyweight way —
// determinize B, flip its accepting set, intersect with A, test emptiness —
// and pays the full subset-construction blowup even when a tiny fragment of
// the determinized complement would have settled the question. This module
// answers the same question by *bottom-up emptiness search on the implicit
// product of A with the determinized-on-demand complement of B* (Frisch &
// Hosoya's antichain refutation search; see docs/INCLUSION.md):
//
//   * Search states are pairs (q, S) with q ∈ Q_A and S ⊆ Q_B, where S is
//     the exact set of B-states reachable on some witness tree t with
//     q ∈ reach_A(t). Only pairs reachable from actual trees are interned;
//     B's subsets materialize lazily, never as a whole transition table.
//   * Inclusion fails iff a pair with q accepting in A and S ∩ F_B = ∅ is
//     reachable; the search stops at the first such pair and replays its
//     provenance chain into a concrete counterexample tree.
//   * Antichain subsumption prunes the frontier: a candidate (q, S) is
//     discarded when an explored (q, S′) with S′ ⊆ S dominates it, and an
//     explored (q, S″) with S″ ⊇ S is retired when the smaller S arrives.
//     Per A-state only ⊆-minimal B-sets survive, which is what keeps the
//     search polynomial on the Martens–Neven deterministic fragments and
//     small in practice elsewhere.
//
// Budgets and failure statuses (PR-5 conventions): the pair arena is bounded
// by TaOpBudgets::max_antichain_pairs (0 = unlimited) and the search aborts
// with kResourceExhausted once crossed; deadlines / cancellation / injected
// faults are polled at TaCheckpoint granularity — once per popped frontier
// pair, once per interned candidate, and once per reconstructed witness
// node — and surface as kDeadlineExceeded / kCancelled with the usual sticky
// semantics. Counters: `incl_pairs_interned` and `incl_pairs_pruned` record
// frontier progress on every exit path; `inclusions` advances only when a
// verdict is reached.

#ifndef PEBBLETC_TA_INCLUSION_H_
#define PEBBLETC_TA_INCLUSION_H_

#include <cstdint>
#include <optional>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/ta/nbta.h"
#include "src/ta/op_context.h"
#include "src/tree/binary_tree.h"

namespace pebbletc {

class NbtaIndex;

/// Verdict of an antichain inclusion check.
struct NbtaInclusionResult {
  /// True iff inst(A) ⊆ inst(B).
  bool included = false;
  /// Set exactly when `included` is false: a concrete tree in
  /// inst(A) \ inst(B), replayed from the refuting pair's provenance chain.
  /// Unlike WitnessTree the counterexample is *not* guaranteed size-minimal
  /// (subsumption prunes the pairs a minimal witness might have run
  /// through), but it is always genuine — diffcheck's inclusion/witness law
  /// re-checks membership on both sides every sweep.
  std::optional<BinaryTree> counterexample;
};

/// inst(a) ⊆ inst(b)? Decided by the antichain search described above — no
/// explicit determinization or complement is ever materialized. Both indexes
/// must be over the same alphabet (equal num_symbols; CHECK-enforced, same
/// contract as IntersectNbta).
///
/// Budget: `max_antichain_pairs` (0 = unlimited) bounds the interned pair
/// arena; exceeding it returns kResourceExhausted. Deadline / cancellation /
/// fault-injection checkpoints surface kDeadlineExceeded / kCancelled /
/// the injected code. Note SymbolLeft adjacency is built lazily on the
/// indexes, so the call is not thread-safe with respect to concurrent use
/// of `a` or `b` (the NbtaIndex contract).
Result<NbtaInclusionResult> NbtaIncludedIn(const NbtaIndex& a,
                                           const NbtaIndex& b,
                                           const RankedAlphabet& alphabet,
                                           TaOpContext* ctx = nullptr);

/// Convenience form compiling throwaway indexes. `max_pairs` (0 = default
/// budget) overrides `max_antichain_pairs`.
Result<NbtaInclusionResult> NbtaIncludedIn(const Nbta& a, const Nbta& b,
                                           const RankedAlphabet& alphabet,
                                           size_t max_pairs = 0);

/// True iff `a` is bottom-up deterministic: no two leaf rules share a symbol
/// with distinct targets, and no two binary rules share (symbol, left,
/// right) with distinct targets (duplicate rules are fine). This is the
/// Martens–Neven tractable fragment detector: when the *superset* automaton
/// B is bottom-up deterministic — every DTD-shaped schema compiles to one —
/// each reachable B-set of the antichain search is a singleton or empty, so
/// NbtaIncludedIn runs in polynomial time. TypecheckOptions' kAuto inclusion
/// mode uses this to pick the antichain path per request. O(|rules|)
/// hashing; no budgets apply.
bool NbtaIsBottomUpDeterministic(const Nbta& a);

/// The automaton accepting exactly {tree}: one state per node, the root
/// state accepting. Used to encode a counterexample tree as a cacheable
/// automaton payload (docs/CACHING.md) and by tests; `tree` must be
/// non-empty and well-ranked for `num_symbols`.
Nbta SingletonTreeNbta(const BinaryTree& tree, uint32_t num_symbols);

}  // namespace pebbletc

#endif  // PEBBLETC_TA_INCLUSION_H_
