#include "src/ta/nbta.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <queue>
#include <string>
#include <utility>

#include "src/common/check.h"

namespace pebbletc {

Status Nbta::Validate(const RankedAlphabet& alphabet) const {
  if (num_symbols != alphabet.size()) {
    return Status::InvalidArgument("num_symbols does not match the alphabet");
  }
  if (accepting.size() != num_states) {
    return Status::InvalidArgument("accepting vector size mismatch");
  }
  for (const LeafRule& r : leaf_rules) {
    if (r.to >= num_states || r.symbol >= num_symbols) {
      return Status::InvalidArgument("leaf rule out of range");
    }
    if (alphabet.Rank(r.symbol) != 0) {
      return Status::InvalidArgument("leaf rule on binary symbol '" +
                                     alphabet.Name(r.symbol) + "'");
    }
  }
  for (const BinaryRule& r : rules) {
    if (r.to >= num_states || r.left >= num_states || r.right >= num_states ||
        r.symbol >= num_symbols) {
      return Status::InvalidArgument("binary rule out of range");
    }
    if (alphabet.Rank(r.symbol) != 2) {
      return Status::InvalidArgument("binary rule on leaf symbol '" +
                                     alphabet.Name(r.symbol) + "'");
    }
  }
  return Status::OK();
}

std::vector<std::vector<bool>> Nbta::RunStates(const BinaryTree& tree) const {
  // Children are always created before parents, so ascending NodeId order is
  // a valid bottom-up evaluation order.
  std::vector<std::vector<bool>> states(tree.size(),
                                        std::vector<bool>(num_states, false));
  // Index rules by symbol once.
  std::vector<std::vector<const BinaryRule*>> by_symbol(num_symbols);
  for (const BinaryRule& r : rules) by_symbol[r.symbol].push_back(&r);
  std::vector<std::vector<StateId>> leaf_by_symbol(num_symbols);
  for (const LeafRule& r : leaf_rules) leaf_by_symbol[r.symbol].push_back(r.to);

  for (NodeId n = 0; n < tree.size(); ++n) {
    const SymbolId sym = tree.symbol(n);
    if (tree.IsLeaf(n)) {
      for (StateId q : leaf_by_symbol[sym]) states[n][q] = true;
    } else {
      const auto& ls = states[tree.left(n)];
      const auto& rs = states[tree.right(n)];
      for (const BinaryRule* r : by_symbol[sym]) {
        if (ls[r->left] && rs[r->right]) states[n][r->to] = true;
      }
    }
  }
  return states;
}

bool Nbta::Accepts(const BinaryTree& tree) const {
  if (tree.empty()) return false;
  std::vector<std::vector<bool>> states = RunStates(tree);
  const auto& root_states = states[tree.root()];
  for (StateId q = 0; q < num_states; ++q) {
    if (root_states[q] && accepting[q]) return true;
  }
  return false;
}

Dbta::Dbta(uint32_t num_states, uint32_t num_symbols)
    : num_states_(num_states),
      num_symbols_(num_symbols),
      accepting_(num_states, false),
      leaf_(num_symbols, 0),
      table_(static_cast<size_t>(num_symbols) * num_states * num_states, 0) {
  PEBBLETC_CHECK(num_states > 0) << "DBTA needs at least one state";
}

StateId Dbta::Eval(const BinaryTree& tree) const {
  PEBBLETC_CHECK(!tree.empty()) << "Eval on empty tree";
  std::vector<StateId> state(tree.size());
  for (NodeId n = 0; n < tree.size(); ++n) {
    state[n] = tree.IsLeaf(n)
                   ? LeafState(tree.symbol(n))
                   : Next(tree.symbol(n), state[tree.left(n)],
                          state[tree.right(n)]);
  }
  return state[tree.root()];
}

Nbta Dbta::ToNbta(const RankedAlphabet& alphabet) const {
  PEBBLETC_CHECK(alphabet.size() == num_symbols_) << "alphabet mismatch";
  Nbta out;
  out.num_symbols = num_symbols_;
  for (StateId q = 0; q < num_states_; ++q) {
    StateId id = out.AddState();
    out.accepting[id] = accepting_[q];
  }
  for (SymbolId a : alphabet.LeafSymbols()) out.AddLeafRule(a, leaf_[a]);
  for (SymbolId a : alphabet.BinarySymbols()) {
    for (StateId l = 0; l < num_states_; ++l) {
      for (StateId r = 0; r < num_states_; ++r) {
        out.AddRule(a, l, r, Next(a, l, r));
      }
    }
  }
  return out;
}

namespace {

using Subset = std::vector<StateId>;  // sorted, unique

}  // namespace

Result<Dbta> DeterminizeNbta(const Nbta& a, const RankedAlphabet& alphabet,
                             size_t max_states) {
  if (alphabet.size() != a.num_symbols) {
    return Status::InvalidArgument("alphabet size mismatch in determinize");
  }
  // Rule index: by symbol, then by left state: (right, to).
  std::vector<std::vector<std::vector<std::pair<StateId, StateId>>>> idx(
      a.num_symbols);
  for (SymbolId s = 0; s < a.num_symbols; ++s) {
    idx[s].assign(a.num_states, {});
  }
  for (const Nbta::BinaryRule& r : a.rules) {
    idx[r.symbol][r.left].push_back({r.right, r.to});
  }

  std::map<Subset, StateId> index;
  std::vector<Subset> subsets;
  auto intern = [&](Subset s) -> StateId {
    auto [it, inserted] = index.emplace(std::move(s), subsets.size());
    if (inserted) subsets.push_back(it->first);
    return it->second;
  };

  // Leaf subsets.
  std::vector<Subset> leaf_subset(a.num_symbols);
  for (const Nbta::LeafRule& r : a.leaf_rules) {
    leaf_subset[r.symbol].push_back(r.to);
  }
  std::vector<StateId> leaf_state(a.num_symbols);
  intern({});  // ensure the empty (sink) subset exists as state 0
  for (SymbolId s = 0; s < a.num_symbols; ++s) {
    Subset set = leaf_subset[s];
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    leaf_state[s] = intern(std::move(set));
  }

  // Fixpoint over symbol × subset × subset. `table[sym]` is resized as the
  // subset list grows; recomputation passes continue until no new subsets.
  auto successor = [&](SymbolId sym, const Subset& s1,
                       const Subset& s2) -> Subset {
    std::vector<bool> in2(a.num_states, false);
    for (StateId q : s2) in2[q] = true;
    std::vector<bool> out_set(a.num_states, false);
    Subset out;
    for (StateId q1 : s1) {
      for (const auto& [right, to] : idx[sym][q1]) {
        if (in2[right] && !out_set[to]) {
          out_set[to] = true;
          out.push_back(to);
        }
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  };

  // transitions[(sym, i, j)] filled as discovered.
  std::map<std::tuple<SymbolId, StateId, StateId>, StateId> trans;
  bool changed = true;
  while (changed) {
    changed = false;
    const size_t snapshot = subsets.size();
    if (max_states != 0 && snapshot > max_states) {
      return Status::ResourceExhausted(
          "determinization exceeded state budget of " +
          std::to_string(max_states));
    }
    for (SymbolId s = 0; s < a.num_symbols; ++s) {
      if (idx[s].empty()) continue;
      for (StateId i = 0; i < snapshot; ++i) {
        for (StateId j = 0; j < snapshot; ++j) {
          auto key = std::make_tuple(s, i, j);
          if (trans.count(key)) continue;
          StateId to = intern(successor(s, subsets[i], subsets[j]));
          trans[key] = to;
          if (subsets.size() > snapshot) changed = true;
        }
      }
    }
    if (subsets.size() > static_cast<size_t>(snapshot)) changed = true;
  }

  const size_t n = subsets.size();
  if (max_states != 0 && n > max_states) {
    return Status::ResourceExhausted(
        "determinization exceeded state budget of " + std::to_string(max_states));
  }
  const size_t table_entries =
      static_cast<size_t>(a.num_symbols) * n * n;
  if (table_entries > (size_t{1} << 28)) {
    return Status::ResourceExhausted(
        "determinized transition table too large (" +
        std::to_string(table_entries) + " entries)");
  }

  Dbta out(static_cast<uint32_t>(n), a.num_symbols);
  for (StateId q = 0; q < n; ++q) {
    bool acc = false;
    for (StateId s : subsets[q]) acc = acc || a.accepting[s];
    out.set_accepting(q, acc);
  }
  for (SymbolId s = 0; s < a.num_symbols; ++s) {
    out.SetLeafState(s, leaf_state[s]);
    for (StateId i = 0; i < n; ++i) {
      for (StateId j = 0; j < n; ++j) {
        auto it = trans.find(std::make_tuple(s, i, j));
        // Symbols with no binary rules never fire; default to the sink (0).
        out.SetNext(s, static_cast<StateId>(i), static_cast<StateId>(j),
                    it == trans.end() ? 0 : it->second);
      }
    }
  }
  return out;
}

Result<Nbta> ComplementNbta(const Nbta& a, const RankedAlphabet& alphabet,
                            size_t max_states) {
  PEBBLETC_ASSIGN_OR_RETURN(Dbta det, DeterminizeNbta(a, alphabet, max_states));
  for (StateId q = 0; q < det.num_states(); ++q) {
    det.set_accepting(q, !det.accepting(q));
  }
  return det.ToNbta(alphabet);
}

Nbta IntersectNbta(const Nbta& a, const Nbta& b) {
  PEBBLETC_CHECK(a.num_symbols == b.num_symbols)
      << "intersection over mismatched alphabets";
  Nbta out;
  out.num_symbols = a.num_symbols;

  // Discovered (inhabited) state pairs, worklist-driven.
  std::map<std::pair<StateId, StateId>, StateId> index;
  std::vector<std::pair<StateId, StateId>> worklist;
  auto intern = [&](StateId x, StateId y) -> StateId {
    auto [it, inserted] =
        index.emplace(std::make_pair(x, y), out.num_states);
    if (inserted) {
      StateId id = out.AddState();
      out.accepting[id] = a.accepting[x] && b.accepting[y];
      worklist.push_back({x, y});
    }
    return it->second;
  };

  // Leaf pairs seed the worklist.
  std::vector<std::vector<const Nbta::LeafRule*>> leaf_a(a.num_symbols),
      leaf_b(b.num_symbols);
  for (const auto& r : a.leaf_rules) leaf_a[r.symbol].push_back(&r);
  for (const auto& r : b.leaf_rules) leaf_b[r.symbol].push_back(&r);
  for (SymbolId s = 0; s < a.num_symbols; ++s) {
    for (const auto* ra : leaf_a[s]) {
      for (const auto* rb : leaf_b[s]) {
        out.AddLeafRule(s, intern(ra->to, rb->to));
      }
    }
  }

  // Rule indexes by child state, so each discovered pair only visits the
  // rules that mention it.
  std::vector<std::vector<uint32_t>> a_by_left(a.num_states),
      a_by_right(a.num_states);
  for (uint32_t i = 0; i < a.rules.size(); ++i) {
    a_by_left[a.rules[i].left].push_back(i);
    a_by_right[a.rules[i].right].push_back(i);
  }
  std::vector<std::vector<uint32_t>> b_by_left(b.num_states),
      b_by_right(b.num_states);
  for (uint32_t i = 0; i < b.rules.size(); ++i) {
    b_by_left[b.rules[i].left].push_back(i);
    b_by_right[b.rules[i].right].push_back(i);
  }

  // Each (a-rule, b-rule) combination is emitted at most once.
  std::set<std::pair<uint32_t, uint32_t>> emitted;
  auto try_emit = [&](uint32_t ia, uint32_t ib) {
    const auto& ra = a.rules[ia];
    const auto& rb = b.rules[ib];
    if (ra.symbol != rb.symbol) return;
    auto l = index.find({ra.left, rb.left});
    if (l == index.end()) return;
    auto r = index.find({ra.right, rb.right});
    if (r == index.end()) return;
    if (!emitted.emplace(ia, ib).second) return;
    StateId to = intern(ra.to, rb.to);
    out.AddRule(ra.symbol, l->second, r->second, to);
  };

  while (!worklist.empty()) {
    auto [xa, xb] = worklist.back();
    worklist.pop_back();
    for (uint32_t ia : a_by_left[xa]) {
      for (uint32_t ib : b_by_left[xb]) try_emit(ia, ib);
    }
    for (uint32_t ia : a_by_right[xa]) {
      for (uint32_t ib : b_by_right[xb]) try_emit(ia, ib);
    }
  }
  return out;
}

Nbta UnionNbta(const Nbta& a, const Nbta& b) {
  PEBBLETC_CHECK(a.num_symbols == b.num_symbols)
      << "union over mismatched alphabets";
  Nbta out;
  out.num_symbols = a.num_symbols;
  for (StateId q = 0; q < a.num_states; ++q) {
    StateId id = out.AddState();
    out.accepting[id] = a.accepting[q];
  }
  const StateId offset = a.num_states;
  for (StateId q = 0; q < b.num_states; ++q) {
    StateId id = out.AddState();
    out.accepting[id] = b.accepting[q];
  }
  out.leaf_rules = a.leaf_rules;
  out.rules = a.rules;
  for (const auto& r : b.leaf_rules) {
    out.AddLeafRule(r.symbol, r.to + offset);
  }
  for (const auto& r : b.rules) {
    out.AddRule(r.symbol, r.left + offset, r.right + offset, r.to + offset);
  }
  return out;
}

namespace {

// States inhabited by at least one tree.
std::vector<bool> InhabitedStates(const Nbta& a) {
  std::vector<bool> inhabited(a.num_states, false);
  for (const auto& r : a.leaf_rules) inhabited[r.to] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& r : a.rules) {
      if (!inhabited[r.to] && inhabited[r.left] && inhabited[r.right]) {
        inhabited[r.to] = true;
        changed = true;
      }
    }
  }
  return inhabited;
}

}  // namespace

bool IsEmptyNbta(const Nbta& a) {
  std::vector<bool> inhabited = InhabitedStates(a);
  for (StateId q = 0; q < a.num_states; ++q) {
    if (inhabited[q] && a.accepting[q]) return false;
  }
  return true;
}

std::optional<BinaryTree> WitnessTree(const Nbta& a) {
  // Minimal witness sizes per state, Dijkstra-style over the hypergraph.
  constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();
  std::vector<uint64_t> best(a.num_states, kInf);
  // The realizing rule for each state: leaf (symbol) or binary (rule index).
  std::vector<int64_t> via_leaf(a.num_states, -1);
  std::vector<int64_t> via_rule(a.num_states, -1);

  for (const auto& r : a.leaf_rules) {
    if (best[r.to] > 1) {
      best[r.to] = 1;
      via_leaf[r.to] = r.symbol;
      via_rule[r.to] = -1;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < a.rules.size(); ++i) {
      const auto& r = a.rules[i];
      if (best[r.left] == kInf || best[r.right] == kInf) continue;
      uint64_t cost = best[r.left] + best[r.right] + 1;
      if (cost < best[r.to]) {
        best[r.to] = cost;
        via_rule[r.to] = static_cast<int64_t>(i);
        via_leaf[r.to] = -1;
        changed = true;
      }
    }
  }

  StateId target = kNoSymbol;
  uint64_t target_size = kInf;
  for (StateId q = 0; q < a.num_states; ++q) {
    if (a.accepting[q] && best[q] < target_size) {
      target_size = best[q];
      target = q;
    }
  }
  if (target == kNoSymbol) return std::nullopt;

  BinaryTree tree;
  // Build iteratively (post-order) from the recorded realizing rules.
  struct Frame {
    StateId state;
    bool expanded;
  };
  std::vector<Frame> stack = {{target, false}};
  std::vector<NodeId> results;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (via_rule[f.state] < 0) {
      PEBBLETC_CHECK(via_leaf[f.state] >= 0) << "no realizing rule";
      results.push_back(
          tree.AddLeaf(static_cast<SymbolId>(via_leaf[f.state])));
    } else if (!f.expanded) {
      const auto& r = a.rules[via_rule[f.state]];
      stack.push_back({f.state, true});
      stack.push_back({r.right, false});
      stack.push_back({r.left, false});
    } else {
      const auto& r = a.rules[via_rule[f.state]];
      NodeId right = results.back();
      results.pop_back();
      NodeId left = results.back();
      results.pop_back();
      results.push_back(tree.AddInternal(r.symbol, left, right));
    }
  }
  PEBBLETC_CHECK(results.size() == 1) << "witness stack imbalance";
  tree.SetRoot(results.back());
  return tree;
}

Result<bool> NbtaIncludes(const Nbta& super, const Nbta& sub,
                          const RankedAlphabet& alphabet, size_t max_states) {
  PEBBLETC_ASSIGN_OR_RETURN(Nbta not_super,
                            ComplementNbta(super, alphabet, max_states));
  return IsEmptyNbta(IntersectNbta(sub, not_super));
}

Result<bool> NbtaEquivalent(const Nbta& a, const Nbta& b,
                            const RankedAlphabet& alphabet,
                            size_t max_states) {
  PEBBLETC_ASSIGN_OR_RETURN(bool ab, NbtaIncludes(b, a, alphabet, max_states));
  if (!ab) return false;
  return NbtaIncludes(a, b, alphabet, max_states);
}

Nbta TrimNbta(const Nbta& a) {
  std::vector<bool> inhabited = InhabitedStates(a);
  // Co-reachable: can contribute to an accepted run.
  std::vector<bool> useful(a.num_states, false);
  for (StateId q = 0; q < a.num_states; ++q) {
    useful[q] = a.accepting[q] && inhabited[q];
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& r : a.rules) {
      if (useful[r.to] && inhabited[r.left] && inhabited[r.right]) {
        if (!useful[r.left]) {
          useful[r.left] = true;
          changed = true;
        }
        if (!useful[r.right]) {
          useful[r.right] = true;
          changed = true;
        }
      }
    }
  }

  std::vector<StateId> remap(a.num_states, kNoSymbol);
  Nbta out;
  out.num_symbols = a.num_symbols;
  for (StateId q = 0; q < a.num_states; ++q) {
    if (useful[q] && inhabited[q]) {
      remap[q] = out.AddState();
      out.accepting[remap[q]] = a.accepting[q];
    }
  }
  for (const auto& r : a.leaf_rules) {
    if (remap[r.to] != kNoSymbol) out.AddLeafRule(r.symbol, remap[r.to]);
  }
  for (const auto& r : a.rules) {
    if (remap[r.to] != kNoSymbol && remap[r.left] != kNoSymbol &&
        remap[r.right] != kNoSymbol) {
      out.AddRule(r.symbol, remap[r.left], remap[r.right], remap[r.to]);
    }
  }
  // Guarantee at least one state so downstream code can assume non-zero.
  if (out.num_states == 0) out.AddState();
  return out;
}

Nbta InverseRelabelNbta(const Nbta& a, const std::vector<SymbolId>& map,
                        uint32_t new_num_symbols) {
  Nbta out;
  out.num_states = a.num_states;
  out.accepting = a.accepting;
  out.num_symbols = new_num_symbols;
  // Index original rules by symbol.
  std::vector<std::vector<const Nbta::LeafRule*>> leaf_by(a.num_symbols);
  for (const auto& r : a.leaf_rules) leaf_by[r.symbol].push_back(&r);
  std::vector<std::vector<const Nbta::BinaryRule*>> bin_by(a.num_symbols);
  for (const auto& r : a.rules) bin_by[r.symbol].push_back(&r);
  for (SymbolId big = 0; big < new_num_symbols; ++big) {
    PEBBLETC_CHECK(big < map.size() && map[big] < a.num_symbols)
        << "unmapped symbol " << big;
    for (const auto* r : leaf_by[map[big]]) out.AddLeafRule(big, r->to);
    for (const auto* r : bin_by[map[big]]) {
      out.AddRule(big, r->left, r->right, r->to);
    }
  }
  return out;
}

Nbta RelabelNbta(const Nbta& a, const std::vector<SymbolId>& map,
                 uint32_t new_num_symbols) {
  Nbta out;
  out.num_states = a.num_states;
  out.accepting = a.accepting;
  out.num_symbols = new_num_symbols;
  for (const auto& r : a.leaf_rules) {
    PEBBLETC_CHECK(r.symbol < map.size() && map[r.symbol] < new_num_symbols)
        << "unmapped symbol " << r.symbol;
    out.AddLeafRule(map[r.symbol], r.to);
  }
  for (const auto& r : a.rules) {
    PEBBLETC_CHECK(r.symbol < map.size() && map[r.symbol] < new_num_symbols)
        << "unmapped symbol " << r.symbol;
    out.AddRule(map[r.symbol], r.left, r.right, r.to);
  }
  return out;
}

Result<Dbta> MinimizeDbta(const Dbta& d, const RankedAlphabet& alphabet) {
  if (alphabet.size() != d.num_symbols()) {
    return Status::InvalidArgument("alphabet size mismatch in minimize");
  }
  const uint32_t n = d.num_states();

  // Inhabited states (reachable bottom-up); everything else collapses into
  // whatever block its signature lands in — harmless, but restricting keeps
  // the refinement honest and the result canonical.
  std::vector<bool> inhabited(n, false);
  {
    bool changed = true;
    for (SymbolId a : alphabet.LeafSymbols()) inhabited[d.LeafState(a)] = true;
    while (changed) {
      changed = false;
      for (SymbolId a : alphabet.BinarySymbols()) {
        for (StateId l = 0; l < n; ++l) {
          if (!inhabited[l]) continue;
          for (StateId r = 0; r < n; ++r) {
            if (!inhabited[r]) continue;
            StateId to = d.Next(a, l, r);
            if (!inhabited[to]) {
              inhabited[to] = true;
              changed = true;
            }
          }
        }
      }
    }
  }
  std::vector<StateId> live;  // inhabited states, dense order
  std::vector<int64_t> live_index(n, -1);
  for (StateId q = 0; q < n; ++q) {
    if (inhabited[q]) {
      live_index[q] = static_cast<int64_t>(live.size());
      live.push_back(q);
    }
  }
  const size_t m = live.size();
  if (m == 0) {
    // Empty language (no leaf symbols): a one-state reject automaton.
    Dbta out(1, d.num_symbols());
    return out;
  }

  // Moore refinement over inhabited states.
  std::vector<uint32_t> block(m);
  for (size_t i = 0; i < m; ++i) block[i] = d.accepting(live[i]) ? 1 : 0;
  size_t num_blocks = 2;
  for (bool changed = true; changed;) {
    changed = false;
    std::map<std::vector<uint32_t>, uint32_t> sig_index;
    std::vector<uint32_t> next_block(m);
    for (size_t i = 0; i < m; ++i) {
      std::vector<uint32_t> sig;
      sig.push_back(block[i]);
      for (SymbolId a : alphabet.BinarySymbols()) {
        for (size_t j = 0; j < m; ++j) {
          StateId as_left = d.Next(a, live[i], live[j]);
          StateId as_right = d.Next(a, live[j], live[i]);
          // Successors outside the inhabited set cannot occur in any run.
          sig.push_back(live_index[as_left] < 0
                            ? ~0u
                            : block[live_index[as_left]]);
          sig.push_back(live_index[as_right] < 0
                            ? ~0u
                            : block[live_index[as_right]]);
        }
      }
      auto [it, inserted] = sig_index.emplace(
          std::move(sig), static_cast<uint32_t>(sig_index.size()));
      (void)inserted;
      next_block[i] = it->second;
    }
    if (sig_index.size() != num_blocks) changed = true;
    num_blocks = sig_index.size();
    block = std::move(next_block);
  }

  // Emit blocks (+ a sink for transitions leaving the inhabited set). The
  // sink may be unreachable; that is fine for a complete automaton.
  const uint32_t sink = static_cast<uint32_t>(num_blocks);
  Dbta out(static_cast<uint32_t>(num_blocks) + 1, d.num_symbols());
  auto block_of = [&](StateId q) -> StateId {
    return live_index[q] < 0 ? sink
                             : static_cast<StateId>(block[live_index[q]]);
  };
  for (size_t i = 0; i < m; ++i) {
    out.set_accepting(block[i], d.accepting(live[i]));
  }
  for (SymbolId a : alphabet.LeafSymbols()) {
    out.SetLeafState(a, block_of(d.LeafState(a)));
  }
  // Representative per block for transition lookups.
  std::vector<StateId> rep(num_blocks, 0);
  for (size_t i = m; i-- > 0;) rep[block[i]] = live[i];
  for (SymbolId a : alphabet.BinarySymbols()) {
    for (uint32_t bi = 0; bi < num_blocks; ++bi) {
      for (uint32_t bj = 0; bj < num_blocks; ++bj) {
        out.SetNext(a, bi, bj, block_of(d.Next(a, rep[bi], rep[bj])));
      }
      out.SetNext(a, bi, sink, sink);
      out.SetNext(a, sink, bi, sink);
    }
    out.SetNext(a, sink, sink, sink);
  }
  return out;
}

Nbta UniversalNbta(const RankedAlphabet& alphabet) {
  Nbta out;
  out.num_symbols = static_cast<uint32_t>(alphabet.size());
  StateId q = out.AddState();
  out.accepting[q] = true;
  for (SymbolId a : alphabet.LeafSymbols()) out.AddLeafRule(a, q);
  for (SymbolId a : alphabet.BinarySymbols()) out.AddRule(a, q, q, q);
  return out;
}

Nbta EmptyLanguageNbta(const RankedAlphabet& alphabet) {
  Nbta out;
  out.num_symbols = static_cast<uint32_t>(alphabet.size());
  out.AddState();  // inert, non-accepting
  return out;
}

uint64_t CountAcceptedTrees(const Nbta& a, size_t num_nodes) {
  if (num_nodes == 0 || num_nodes % 2 == 0) return 0;
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  auto sat_add = [](uint64_t x, uint64_t y) {
    return (x > kMax - y) ? kMax : x + y;
  };
  auto sat_mul = [](uint64_t x, uint64_t y) -> uint64_t {
    if (x == 0 || y == 0) return 0;
    if (x > kMax / y) return kMax;
    return x * y;
  };
  // count[s][q]: trees with s nodes evaluating to q (s odd).
  std::vector<std::vector<uint64_t>> count(
      num_nodes + 1, std::vector<uint64_t>(a.num_states, 0));
  for (const auto& r : a.leaf_rules) {
    count[1][r.to] = sat_add(count[1][r.to], 1);
  }
  for (size_t s = 3; s <= num_nodes; s += 2) {
    for (const auto& r : a.rules) {
      for (size_t s1 = 1; s1 <= s - 2; s1 += 2) {
        size_t s2 = s - 1 - s1;
        uint64_t c = sat_mul(count[s1][r.left], count[s2][r.right]);
        if (c != 0) count[s][r.to] = sat_add(count[s][r.to], c);
      }
    }
  }
  uint64_t total = 0;
  for (StateId q = 0; q < a.num_states; ++q) {
    if (a.accepting[q]) total = sat_add(total, count[num_nodes][q]);
  }
  return total;
}

}  // namespace pebbletc
