#include "src/ta/nbta.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <limits>
#include <map>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/ta/inclusion.h"
#include "src/ta/nbta_index.h"
#include "src/ta/thread_pool.h"

namespace pebbletc {

Status Nbta::Validate(const RankedAlphabet& alphabet) const {
  if (num_symbols != alphabet.size()) {
    return Status::InvalidArgument("num_symbols does not match the alphabet");
  }
  if (accepting.size() != num_states) {
    return Status::InvalidArgument("accepting vector size mismatch");
  }
  for (const LeafRule& r : leaf_rules) {
    if (r.to >= num_states || r.symbol >= num_symbols) {
      return Status::InvalidArgument("leaf rule out of range");
    }
    if (alphabet.Rank(r.symbol) != 0) {
      return Status::InvalidArgument("leaf rule on binary symbol '" +
                                     alphabet.Name(r.symbol) + "'");
    }
  }
  for (const BinaryRule& r : rules) {
    if (r.to >= num_states || r.left >= num_states || r.right >= num_states ||
        r.symbol >= num_symbols) {
      return Status::InvalidArgument("binary rule out of range");
    }
    if (alphabet.Rank(r.symbol) != 2) {
      return Status::InvalidArgument("binary rule on leaf symbol '" +
                                     alphabet.Name(r.symbol) + "'");
    }
  }
  return Status::OK();
}

std::vector<std::vector<bool>> NbtaRunStates(const NbtaIndex& idx,
                                             const BinaryTree& tree) {
  const Nbta& a = idx.nbta();
  // Children are always created before parents, so ascending NodeId order is
  // a valid bottom-up evaluation order.
  std::vector<std::vector<bool>> states(tree.size(),
                                        std::vector<bool>(a.num_states, false));
  for (NodeId n = 0; n < tree.size(); ++n) {
    const SymbolId sym = tree.symbol(n);
    if (tree.IsLeaf(n)) {
      for (StateId q : idx.LeafTargets(sym)) states[n][q] = true;
    } else {
      const auto& ls = states[tree.left(n)];
      const auto& rs = states[tree.right(n)];
      for (uint32_t ri : idx.RulesWithSymbol(sym)) {
        const Nbta::BinaryRule& r = a.rules[ri];
        if (ls[r.left] && rs[r.right]) states[n][r.to] = true;
      }
    }
  }
  return states;
}

bool NbtaAccepts(const NbtaIndex& idx, const BinaryTree& tree) {
  const Nbta& a = idx.nbta();
  if (tree.empty()) return false;
  const NodeId root = tree.root();
  std::vector<std::vector<bool>> states(tree.size());
  for (NodeId n = 0; n < tree.size(); ++n) {
    const SymbolId sym = tree.symbol(n);
    if (tree.IsLeaf(n)) {
      if (n == root) {
        // Early exit: accept as soon as one accepting leaf rule fires.
        for (StateId q : idx.LeafTargets(sym)) {
          if (a.accepting[q]) return true;
        }
        return false;
      }
      std::vector<bool> out(a.num_states, false);
      for (StateId q : idx.LeafTargets(sym)) out[q] = true;
      states[n] = std::move(out);
    } else {
      const auto& ls = states[tree.left(n)];
      const auto& rs = states[tree.right(n)];
      if (n == root) {
        // Early exit: no need to materialize the full root bitset.
        for (uint32_t ri : idx.RulesWithSymbol(sym)) {
          const Nbta::BinaryRule& r = a.rules[ri];
          if (a.accepting[r.to] && ls[r.left] && rs[r.right]) return true;
        }
        return false;
      }
      std::vector<bool> out(a.num_states, false);
      for (uint32_t ri : idx.RulesWithSymbol(sym)) {
        const Nbta::BinaryRule& r = a.rules[ri];
        if (ls[r.left] && rs[r.right]) out[r.to] = true;
      }
      states[n] = std::move(out);
    }
  }
  return false;  // root outside the node range (cannot happen for valid trees)
}

std::vector<std::vector<bool>> Nbta::RunStates(const BinaryTree& tree) const {
  return NbtaRunStates(NbtaIndex(*this), tree);
}

bool Nbta::Accepts(const BinaryTree& tree) const {
  return NbtaAccepts(NbtaIndex(*this), tree);
}

Dbta::Dbta(uint32_t num_states, uint32_t num_symbols)
    : num_states_(num_states),
      num_symbols_(num_symbols),
      accepting_(num_states, false),
      leaf_(num_symbols, 0),
      table_(static_cast<size_t>(num_symbols) * num_states * num_states, 0) {
  PEBBLETC_CHECK(num_states > 0) << "DBTA needs at least one state";
}

StateId Dbta::Eval(const BinaryTree& tree) const {
  PEBBLETC_CHECK(!tree.empty()) << "Eval on empty tree";
  std::vector<StateId> state(tree.size());
  for (NodeId n = 0; n < tree.size(); ++n) {
    state[n] = tree.IsLeaf(n)
                   ? LeafState(tree.symbol(n))
                   : Next(tree.symbol(n), state[tree.left(n)],
                          state[tree.right(n)]);
  }
  return state[tree.root()];
}

Nbta Dbta::ToNbta(const RankedAlphabet& alphabet) const {
  PEBBLETC_CHECK(alphabet.size() == num_symbols_) << "alphabet mismatch";
  Nbta out;
  out.num_symbols = num_symbols_;
  for (StateId q = 0; q < num_states_; ++q) {
    StateId id = out.AddState();
    out.accepting[id] = accepting_[q];
  }
  for (SymbolId a : alphabet.LeafSymbols()) out.AddLeafRule(a, leaf_[a]);
  for (SymbolId a : alphabet.BinarySymbols()) {
    for (StateId l = 0; l < num_states_; ++l) {
      for (StateId r = 0; r < num_states_; ++r) {
        out.AddRule(a, l, r, Next(a, l, r));
      }
    }
  }
  return out;
}

namespace {

// --- the frontier-driven determinization engine (docs/DETERMINIZE.md) ---
//
// Subsets are processed in interning order; dequeuing subset p expands the
// pairs (p, j) and (j, p) for every j ≤ p and each binary symbol. Any pair
// (i, j) is therefore expanded exactly once — when max(i, j) leaves the
// frontier — instead of being rescanned on every pass of a fixpoint.

// One computed transition δ_sym(l, r) = to. The frontier discipline produces
// each (sym, l, r) triple exactly once, so records append to a flat list; no
// transition map is needed.
struct DetTrans {
  SymbolId sym;
  StateId l;
  StateId r;
  StateId to;
};

constexpr uint32_t kNoSubset = 0xffffffffu;

// Budget/overflow check shared by both regimes. The state budget and the
// dense-table cap are enforced *during* the frontier loop (between frontier
// items and at the interior polls), so a blowing-up construction aborts
// promptly instead of after a full pass.
Status DetBudgetCheck(size_t num_subsets, size_t max_states,
                      uint32_t num_symbols) {
  if (max_states != 0 && num_subsets > max_states) {
    return Status::ResourceExhausted(
        "determinization exceeded state budget of " +
        std::to_string(max_states));
  }
  const size_t table_entries =
      static_cast<size_t>(num_symbols) * num_subsets * num_subsets;
  if (table_entries > (size_t{1} << 28)) {
    return Status::ResourceExhausted(
        "determinized transition table too large (" +
        std::to_string(table_entries) + " entries)");
  }
  return Status::OK();
}

// Dense regime (≤ kDenseMaskMaxStates states): a subset is one uint32_t
// mask, the interner is a direct-mapped 2^|Q| array, and δ is a mask fold
// over the index's precomputed successor-mask table. Folding the table
// against the frontier subset once per (item, symbol) makes each pair cost
// O(|S_j|) single-word ORs — the regime where the naive all-2^n bitmask
// reference used to win.
Result<Dbta> DeterminizeDense(const NbtaIndex& idx, TaOpContext* ctx) {
  const Nbta& a = idx.nbta();
  const uint32_t ns = a.num_states;
  const size_t max_states = TaBudgetMaxDetStates(ctx);

  uint32_t accepting_mask = 0;
  for (StateId q : idx.AcceptingStates()) accepting_mask |= 1u << q;

  std::vector<uint32_t> mask_to_id(size_t{1} << ns, kNoSubset);
  std::vector<uint32_t> subsets;  // id → state mask
  auto intern = [&](uint32_t m) -> StateId {
    uint32_t& slot = mask_to_id[m];
    if (slot == kNoSubset) {
      slot = static_cast<uint32_t>(subsets.size());
      subsets.push_back(m);
    }
    return slot;
  };

  intern(0);  // the empty (sink) subset is state 0
  std::vector<StateId> leaf_state(a.num_symbols);
  for (SymbolId s = 0; s < a.num_symbols; ++s) {
    uint32_t m = 0;
    for (StateId q : idx.LeafTargets(s)) m |= 1u << q;
    leaf_state[s] = intern(m);
  }

  std::vector<SymbolId> active;  // symbols with at least one binary rule
  for (SymbolId s = 0; s < a.num_symbols; ++s) {
    if (!idx.RulesWithSymbol(s).empty()) active.push_back(s);
  }

  std::vector<DetTrans> trans;
  size_t pairs = 0;
  size_t rules_scanned = 0;
  auto flush = [&]() {
    TaCountRules(ctx, rules_scanned);
    if (ctx != nullptr) {
      ctx->counters.det_pairs_expanded += pairs;
      ctx->counters.det_subsets_interned += subsets.size();
    }
  };

  std::vector<uint32_t> left_fold(ns), right_fold(ns);
  size_t next_poll = 4096;
  for (uint32_t p = 0; p < subsets.size(); ++p) {
    for (SymbolId s : active) {
      Status interrupt = TaCheckpoint(ctx);
      if (!interrupt.ok()) {
        flush();
        return interrupt;
      }
      std::span<const uint32_t> tm = idx.SuccessorMasks(s);
      const uint32_t sp = subsets[p];
      // Fold the successor table against the frontier subset once:
      //   left_fold[q2]  = δ-contribution of S_p as *left* child with q2,
      //   right_fold[q1] = δ-contribution of S_p as *right* child with q1.
      for (uint32_t q2 = 0; q2 < ns; ++q2) left_fold[q2] = 0;
      for (uint32_t m = sp; m != 0; m &= m - 1) {
        const uint32_t q1 = static_cast<uint32_t>(std::countr_zero(m));
        const uint32_t* row = tm.data() + static_cast<size_t>(q1) * ns;
        for (uint32_t q2 = 0; q2 < ns; ++q2) left_fold[q2] |= row[q2];
      }
      for (uint32_t q1 = 0; q1 < ns; ++q1) {
        const uint32_t* row = tm.data() + static_cast<size_t>(q1) * ns;
        uint32_t acc = 0;
        for (uint32_t m = sp; m != 0; m &= m - 1) {
          acc |= row[std::countr_zero(m)];
        }
        right_fold[q1] = acc;
      }
      rules_scanned +=
          2 * static_cast<size_t>(ns) * std::popcount(sp);

      for (uint32_t j = 0; j <= p; ++j) {
        const uint32_t sj = subsets[j];
        uint32_t out_lr = 0;  // δ(S_p, S_j)
        for (uint32_t m = sj; m != 0; m &= m - 1) {
          out_lr |= left_fold[std::countr_zero(m)];
        }
        trans.push_back({s, p, j, intern(out_lr)});
        ++pairs;
        if (j != p) {
          uint32_t out_rl = 0;  // δ(S_j, S_p)
          for (uint32_t m = sj; m != 0; m &= m - 1) {
            out_rl |= right_fold[std::countr_zero(m)];
          }
          trans.push_back({s, j, p, intern(out_rl)});
          ++pairs;
        }
        if (pairs >= next_poll) {
          next_poll = pairs + 4096;
          Status st = TaCheckpoint(ctx);
          if (st.ok()) {
            st = DetBudgetCheck(subsets.size(), max_states, a.num_symbols);
          }
          if (!st.ok()) {
            flush();
            return st;
          }
        }
      }
      Status st = DetBudgetCheck(subsets.size(), max_states, a.num_symbols);
      if (!st.ok()) {
        flush();
        return st;
      }
    }
  }

  const size_t n = subsets.size();
  Dbta out(static_cast<uint32_t>(n), a.num_symbols);
  for (size_t q = 0; q < n; ++q) {
    out.set_accepting(static_cast<StateId>(q),
                      (subsets[q] & accepting_mask) != 0);
  }
  // Symbols with no binary rules never fire; their table rows keep the sink
  // default (0) from the Dbta constructor.
  for (SymbolId s = 0; s < a.num_symbols; ++s) out.SetLeafState(s, leaf_state[s]);
  for (const DetTrans& t : trans) out.SetNext(t.sym, t.l, t.r, t.to);
  if (ctx != nullptr) {
    ctx->counters.determinizations++;
    ctx->counters.states_materialized += n;
  }
  flush();
  return out;
}

// Sparse regime (> kDenseMaskMaxStates states): subsets are w-word packed
// bitsets in a flat arena, interned through an open-addressing hash table
// (linear probing, power-of-two capacity, grown at 9/16 load), and δ walks
// the compiled (symbol, left-state) adjacency rows — each pair exactly once.
Result<Dbta> DeterminizeSparse(const NbtaIndex& idx, TaOpContext* ctx) {
  const Nbta& a = idx.nbta();
  const uint32_t ns = a.num_states;
  const uint32_t w = (ns + 63) / 64;
  const size_t max_states = TaBudgetMaxDetStates(ctx);

  std::vector<uint64_t> acc_words(w, 0);
  for (StateId q : idx.AcceptingStates()) {
    acc_words[q >> 6] |= uint64_t{1} << (q & 63);
  }

  // Subset arena + open-addressing interner keyed on the packed words.
  std::vector<uint64_t> pool;  // subset k occupies [k*w, (k+1)*w)
  size_t count = 0;
  size_t cap = 64;  // power of two
  std::vector<uint32_t> slots(cap, kNoSubset);
  auto hash_words = [w](const uint64_t* s) -> uint64_t {
    uint64_t h = 0x9e3779b97f4a7c15ull;
    for (uint32_t i = 0; i < w; ++i) {
      h ^= s[i];
      h *= 0xbf58476d1ce4e5b9ull;
      h ^= h >> 27;
    }
    return h;
  };
  auto find_slot = [&](const uint64_t* s) -> uint32_t* {
    size_t i = hash_words(s) & (cap - 1);
    while (slots[i] != kNoSubset) {
      const uint64_t* have = pool.data() + static_cast<size_t>(slots[i]) * w;
      if (std::equal(have, have + w, s)) return &slots[i];
      i = (i + 1) & (cap - 1);
    }
    return &slots[i];
  };
  auto intern = [&](const uint64_t* s) -> StateId {
    if ((count + 1) * 16 > cap * 9) {  // keep load ≤ 9/16
      cap *= 2;
      std::fill(slots.begin(), slots.end(), kNoSubset);
      slots.resize(cap, kNoSubset);
      for (size_t k = 0; k < count; ++k) {
        const uint64_t* have = pool.data() + k * w;
        size_t i = hash_words(have) & (cap - 1);
        while (slots[i] != kNoSubset) i = (i + 1) & (cap - 1);
        slots[i] = static_cast<uint32_t>(k);
      }
    }
    uint32_t* slot = find_slot(s);
    if (*slot == kNoSubset) {
      *slot = static_cast<uint32_t>(count++);
      pool.insert(pool.end(), s, s + w);
    }
    return *slot;
  };

  std::vector<uint64_t> scratch(w, 0);
  intern(scratch.data());  // the empty (sink) subset is state 0
  std::vector<StateId> leaf_state(a.num_symbols);
  for (SymbolId s = 0; s < a.num_symbols; ++s) {
    std::fill(scratch.begin(), scratch.end(), 0);
    for (StateId q : idx.LeafTargets(s)) {
      scratch[q >> 6] |= uint64_t{1} << (q & 63);
    }
    leaf_state[s] = intern(scratch.data());
  }

  std::vector<SymbolId> active;
  for (SymbolId s = 0; s < a.num_symbols; ++s) {
    if (!idx.RulesWithSymbol(s).empty()) active.push_back(s);
  }

  size_t rules_scanned = 0;
  size_t pairs = 0;
  auto flush = [&]() {
    TaCountRules(ctx, rules_scanned);
    if (ctx != nullptr) {
      ctx->counters.det_pairs_expanded += pairs;
      ctx->counters.det_subsets_interned += count;
    }
  };

  // δ(left, right) for `sym` into `scratch`. Pointers into the arena are
  // taken fresh per call: interning grows the pool only between calls.
  auto successor = [&](SymbolId sym, uint32_t li, uint32_t ri) {
    std::fill(scratch.begin(), scratch.end(), 0);
    const uint64_t* lw = pool.data() + static_cast<size_t>(li) * w;
    const uint64_t* rw = pool.data() + static_cast<size_t>(ri) * w;
    for (uint32_t wi = 0; wi < w; ++wi) {
      for (uint64_t word = lw[wi]; word != 0; word &= word - 1) {
        const uint32_t q1 = wi * 64 + static_cast<uint32_t>(
                                          std::countr_zero(word));
        std::span<const NbtaIndex::RightTo> row = idx.SymbolLeft(sym, q1);
        rules_scanned += row.size();
        for (const NbtaIndex::RightTo& rt : row) {
          if ((rw[rt.right >> 6] >> (rt.right & 63)) & 1) {
            scratch[rt.to >> 6] |= uint64_t{1} << (rt.to & 63);
          }
        }
      }
    }
  };

  std::vector<DetTrans> trans;
  size_t next_poll = 4096;
  for (uint32_t p = 0; p < count; ++p) {
    for (SymbolId s : active) {
      Status interrupt = TaCheckpoint(ctx);
      if (!interrupt.ok()) {
        flush();
        return interrupt;
      }
      for (uint32_t j = 0; j <= p; ++j) {
        successor(s, p, j);
        trans.push_back({s, p, j, intern(scratch.data())});
        ++pairs;
        if (j != p) {
          successor(s, j, p);
          trans.push_back({s, j, p, intern(scratch.data())});
          ++pairs;
        }
        // Adjacency rows can be long, so the interior poll is driven by
        // rules scanned rather than pairs: bounded interruption latency
        // even when single pairs are heavy.
        if (rules_scanned >= next_poll) {
          next_poll = rules_scanned + 4096;
          Status st = TaCheckpoint(ctx);
          if (st.ok()) {
            st = DetBudgetCheck(count, max_states, a.num_symbols);
          }
          if (!st.ok()) {
            flush();
            return st;
          }
        }
      }
      Status st = DetBudgetCheck(count, max_states, a.num_symbols);
      if (!st.ok()) {
        flush();
        return st;
      }
    }
  }

  Dbta out(static_cast<uint32_t>(count), a.num_symbols);
  for (size_t q = 0; q < count; ++q) {
    const uint64_t* qs = pool.data() + q * w;
    bool acc = false;
    for (uint32_t wi = 0; wi < w && !acc; ++wi) {
      acc = (qs[wi] & acc_words[wi]) != 0;
    }
    out.set_accepting(static_cast<StateId>(q), acc);
  }
  for (SymbolId s = 0; s < a.num_symbols; ++s) out.SetLeafState(s, leaf_state[s]);
  for (const DetTrans& t : trans) out.SetNext(t.sym, t.l, t.r, t.to);
  if (ctx != nullptr) {
    ctx->counters.determinizations++;
    ctx->counters.states_materialized += count;
  }
  flush();
  return out;
}

}  // namespace

Result<Dbta> DeterminizeNbta(const NbtaIndex& idx,
                             const RankedAlphabet& alphabet, TaOpContext* ctx) {
  const Nbta& a = idx.nbta();
  if (alphabet.size() != a.num_symbols) {
    return Status::InvalidArgument("alphabet size mismatch in determinize");
  }
  TaOpTimer timer(ctx);
  return idx.DenseMasksApplicable() ? DeterminizeDense(idx, ctx)
                                    : DeterminizeSparse(idx, ctx);
}

Result<Dbta> DeterminizeNbta(const Nbta& a, const RankedAlphabet& alphabet,
                             size_t max_states) {
  TaOpContext ctx;
  ctx.budgets.max_det_states = max_states;
  return DeterminizeNbta(NbtaIndex(a), alphabet, &ctx);
}

Result<Nbta> ComplementNbta(const NbtaIndex& a, const RankedAlphabet& alphabet,
                            TaOpContext* ctx) {
  PEBBLETC_ASSIGN_OR_RETURN(Dbta det, DeterminizeNbta(a, alphabet, ctx));
  if (ctx != nullptr) ctx->counters.complementations++;
  for (StateId q = 0; q < det.num_states(); ++q) {
    det.set_accepting(q, !det.accepting(q));
  }
  return det.ToNbta(alphabet);
}

Result<Nbta> ComplementNbta(const Nbta& a, const RankedAlphabet& alphabet,
                            size_t max_states) {
  TaOpContext ctx;
  ctx.budgets.max_det_states = max_states;
  return ComplementNbta(NbtaIndex(a), alphabet, &ctx);
}

namespace {

// ---------------------------------------------------------------------------
// Flat product-construction machinery (docs/PARALLEL.md).
//
// The pair interner and the emitted-combination guard are the two structures
// every (a-rule, b-rule) candidate touches; both are flat arrays here — the
// node-based std::map / std::set they replaced dominated the product's
// profile the same way the determinization maps did before the frontier
// rewrite (docs/DETERMINIZE.md).
// ---------------------------------------------------------------------------

// No valid pair packs to ~0: states are ids below num_states <= 2^32 - 1.
constexpr uint64_t kEmptyPairKey = ~0ull;
constexpr StateId kPairNotFound = 0xffffffffu;

inline uint64_t PackPair(StateId x, StateId y) {
  return (static_cast<uint64_t>(x) << 32) | y;
}

// splitmix64 finalizer over the packed pair.
inline uint64_t HashPairKey(uint64_t key) {
  uint64_t h = key + 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

// Open-addressing map from a packed (x, y) state pair to a product StateId.
// Power-of-two capacity, linear probing, grown at 9/16 load (the
// determinization interner's discipline).
class FlatPairIndex {
 public:
  FlatPairIndex() { Grow(1u << 10); }

  StateId Find(uint64_t key) const {
    size_t slot = HashPairKey(key) & mask_;
    for (;;) {
      const uint64_t k = keys_[slot];
      if (k == key) return ids_[slot];
      if (k == kEmptyPairKey) return kPairNotFound;
      slot = (slot + 1) & mask_;
    }
  }

  // Existing id for `key`, or interns it as `id_if_new` with
  // `*inserted = true`.
  StateId FindOrInsert(uint64_t key, StateId id_if_new, bool* inserted) {
    size_t slot = HashPairKey(key) & mask_;
    for (;;) {
      const uint64_t k = keys_[slot];
      if (k == key) {
        *inserted = false;
        return ids_[slot];
      }
      if (k == kEmptyPairKey) break;
      slot = (slot + 1) & mask_;
    }
    keys_[slot] = key;
    ids_[slot] = id_if_new;
    if (++size_ * 16 > (mask_ + 1) * 9) Grow((mask_ + 1) * 2);
    *inserted = true;
    return id_if_new;
  }

 private:
  void Grow(size_t capacity) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<StateId> old_ids = std::move(ids_);
    keys_.assign(capacity, kEmptyPairKey);
    ids_.assign(capacity, kPairNotFound);
    mask_ = capacity - 1;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmptyPairKey) continue;
      size_t slot = HashPairKey(old_keys[i]) & mask_;
      while (keys_[slot] != kEmptyPairKey) slot = (slot + 1) & mask_;
      keys_[slot] = old_keys[i];
      ids_[slot] = old_ids[i];
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<StateId> ids_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

// Replaces the per-(a-rule, b-rule) std::set emitted guard with lazily
// allocated per-a-rule bitmap rows. A surviving candidate's b-rule always
// carries the a-rule's symbol (mismatches are rejected before the guard), so
// a row only spans the b-rules labelled with that symbol: bit positions are
// each b-rule's dense position inside ib.RulesWithSymbol(symbol),
// precomputed once. Rows live in one arena and are allocated the first time
// their a-rule survives the pair lookups.
class EmittedGuard {
 public:
  EmittedGuard(const NbtaIndex& ib, size_t num_a_rules)
      : rows_(num_a_rules, kNoRow) {
    const Nbta& b = ib.nbta();
    b_pos_.resize(b.rules.size());
    row_words_.resize(b.num_symbols);
    for (SymbolId s = 0; s < b.num_symbols; ++s) {
      const auto rules = ib.RulesWithSymbol(s);
      row_words_[s] = static_cast<uint32_t>((rules.size() + 63) / 64);
      uint32_t pos = 0;
      for (uint32_t rb_i : rules) b_pos_[rb_i] = pos++;
    }
  }

  // Test-and-set of (ra_i, rb_i); true when the combination is new.
  bool Mark(uint32_t ra_i, SymbolId symbol, uint32_t rb_i) {
    uint64_t row = rows_[ra_i];
    if (row == kNoRow) {
      row = arena_.size();
      arena_.resize(arena_.size() + row_words_[symbol], 0);
      rows_[ra_i] = row;
    }
    const uint32_t pos = b_pos_[rb_i];
    uint64_t& word = arena_[row + pos / 64];
    const uint64_t bit = 1ull << (pos % 64);
    if ((word & bit) != 0) return false;
    word |= bit;
    return true;
  }

 private:
  static constexpr uint64_t kNoRow = ~0ull;
  std::vector<uint64_t> rows_;       // a-rule -> arena word offset
  std::vector<uint64_t> arena_;      // concatenated bitmap rows
  std::vector<uint32_t> b_pos_;      // b-rule -> dense per-symbol position
  std::vector<uint32_t> row_words_;  // symbol -> row width in words
};

// The serial product construction — also the parallel path's correctness
// oracle: num_threads=1 runs exactly this code, with deterministic state
// numbering and checkpoint ordinals.
void IntersectSerial(const NbtaIndex& ia, const NbtaIndex& ib,
                     TaOpContext* ctx, Nbta& out) {
  const Nbta& a = ia.nbta();
  const Nbta& b = ib.nbta();

  // Discovered (inhabited) state pairs, worklist-driven.
  FlatPairIndex index;
  std::vector<std::pair<StateId, StateId>> worklist;
  auto intern = [&](StateId x, StateId y) -> StateId {
    bool inserted = false;
    const StateId id =
        index.FindOrInsert(PackPair(x, y), out.num_states, &inserted);
    if (inserted) {
      out.AddState();
      out.accepting[id] = a.accepting[x] && b.accepting[y];
      worklist.push_back({x, y});
    }
    return id;
  };

  // Leaf pairs seed the worklist.
  for (SymbolId s = 0; s < a.num_symbols; ++s) {
    for (StateId ta : ia.LeafTargets(s)) {
      for (StateId tb : ib.LeafTargets(s)) {
        out.AddLeafRule(s, intern(ta, tb));
      }
    }
  }

  // Each (a-rule, b-rule) combination is emitted at most once.
  size_t rules_scanned = 0;
  bool interrupted = false;
  EmittedGuard emitted(ib, a.rules.size());
  auto try_emit = [&](uint32_t ra_i, uint32_t rb_i) {
    ++rules_scanned;
    const auto& ra = a.rules[ra_i];
    const auto& rb = b.rules[rb_i];
    if (ra.symbol != rb.symbol) return;
    const StateId l = index.Find(PackPair(ra.left, rb.left));
    if (l == kPairNotFound) return;
    const StateId r = index.Find(PackPair(ra.right, rb.right));
    if (r == kPairNotFound) return;
    if (!emitted.Mark(ra_i, ra.symbol, rb_i)) return;
    const StateId to = intern(ra.to, rb.to);
    out.AddRule(ra.symbol, l, r, to);
  };
  // One discovered pair scans |rules_a(child)| × |rules_b(child)|
  // combinations — billions over large (track-extended) alphabets — so the
  // per-item checkpoint below is not enough. Poll between inner sweeps once
  // enough pairs accumulate: the innermost loop stays check-free (the poll
  // must not tax the hot path) and interruption latency is bounded by one
  // b-side rule list.
  size_t next_poll = 4096;
  auto poll = [&]() {
    if (rules_scanned >= next_poll) {
      next_poll = rules_scanned + 4096;
      if (!TaCheckpoint(ctx).ok()) interrupted = true;
    }
  };

  // The compiled by-child adjacency means each discovered pair only visits
  // the rules that mention it.
  while (!worklist.empty() && !interrupted) {
    // Interrupted: drain early; the partial product is structurally valid
    // (every emitted rule is sound), callers consult TaInterruptStatus before
    // drawing emptiness conclusions from it.
    if (!TaCheckpoint(ctx).ok()) break;
    auto [xa, xb] = worklist.back();
    worklist.pop_back();
    for (uint32_t ra_i : ia.RulesWithLeft(xa)) {
      for (uint32_t rb_i : ib.RulesWithLeft(xb)) try_emit(ra_i, rb_i);
      poll();
      if (interrupted) break;
    }
    for (uint32_t ra_i : ia.RulesWithRight(xa)) {
      for (uint32_t rb_i : ib.RulesWithRight(xb)) try_emit(ra_i, rb_i);
      poll();
      if (interrupted) break;
    }
  }
  if (ctx != nullptr) ctx->counters.rules_scanned += rules_scanned;
}

// ---------------------------------------------------------------------------
// Sharded product construction (num_threads > 1).
//
// Workers share a striped pair interner and a striped emitted guard; each
// keeps a local frontier of freshly discovered pairs and hands batches to a
// global queue when the stash outgrows one worker. Result states and rules
// are language-equal to the serial product but not bit-identical: id
// assignment and rule order depend on the schedule (docs/PARALLEL.md).
// ---------------------------------------------------------------------------

// 64 independently locked open-addressing tables; the stripe is the hash's
// low bits, probing uses the remaining bits and stays within one stripe.
// Product ids come from one shared counter, so ids are dense.
class StripedPairIndex {
 public:
  static constexpr size_t kStripes = 64;

  StripedPairIndex() {
    for (Stripe& st : stripes_) {
      st.keys.assign(1u << 7, kEmptyPairKey);
      st.ids.assign(1u << 7, kPairNotFound);
      st.mask = (1u << 7) - 1;
    }
  }

  StateId Find(uint64_t key) {
    const uint64_t h = HashPairKey(key);
    Stripe& st = stripes_[h & (kStripes - 1)];
    std::lock_guard<std::mutex> lock(st.mu);
    size_t slot = (h / kStripes) & st.mask;
    for (;;) {
      const uint64_t k = st.keys[slot];
      if (k == key) return st.ids[slot];
      if (k == kEmptyPairKey) return kPairNotFound;
      slot = (slot + 1) & st.mask;
    }
  }

  // Existing id, or a fresh one from the shared counter; `*inserted = true`
  // hands the caller ownership of queueing the pair (exactly one worker
  // interns any given pair).
  StateId FindOrInsert(uint64_t key, bool* inserted) {
    const uint64_t h = HashPairKey(key);
    Stripe& st = stripes_[h & (kStripes - 1)];
    std::lock_guard<std::mutex> lock(st.mu);
    size_t slot = (h / kStripes) & st.mask;
    for (;;) {
      const uint64_t k = st.keys[slot];
      if (k == key) {
        *inserted = false;
        return st.ids[slot];
      }
      if (k == kEmptyPairKey) break;
      slot = (slot + 1) & st.mask;
    }
    const StateId id = next_id_.fetch_add(1, std::memory_order_relaxed);
    st.keys[slot] = key;
    st.ids[slot] = id;
    if (++st.size * 16 > (st.mask + 1) * 9) GrowStripe(st);
    *inserted = true;
    return id;
  }

  uint32_t TotalStates() const {
    return next_id_.load(std::memory_order_acquire);
  }

 private:
  struct Stripe {
    std::mutex mu;
    std::vector<uint64_t> keys;
    std::vector<StateId> ids;
    size_t mask = 0;
    size_t size = 0;
  };

  static void GrowStripe(Stripe& st) {
    std::vector<uint64_t> old_keys = std::move(st.keys);
    std::vector<StateId> old_ids = std::move(st.ids);
    const size_t capacity = (st.mask + 1) * 2;
    st.keys.assign(capacity, kEmptyPairKey);
    st.ids.assign(capacity, kPairNotFound);
    st.mask = capacity - 1;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmptyPairKey) continue;
      size_t slot = (HashPairKey(old_keys[i]) / kStripes) & st.mask;
      while (st.keys[slot] != kEmptyPairKey) slot = (slot + 1) & st.mask;
      st.keys[slot] = old_keys[i];
      st.ids[slot] = old_ids[i];
    }
  }

  Stripe stripes_[kStripes];
  std::atomic<StateId> next_id_{0};
};

// The emitted guard's parallel form: bitmap rows striped by a-rule index,
// each stripe holding its own rows and arena behind its own lock (row
// allocation grows the arena, which must not race with a test-and-set in the
// same stripe). b_pos_ / row_words_ are read-only after construction.
class StripedEmittedGuard {
 public:
  static constexpr size_t kStripes = 64;

  StripedEmittedGuard(const NbtaIndex& ib, size_t num_a_rules) {
    const Nbta& b = ib.nbta();
    b_pos_.resize(b.rules.size());
    row_words_.resize(b.num_symbols);
    for (SymbolId s = 0; s < b.num_symbols; ++s) {
      const auto rules = ib.RulesWithSymbol(s);
      row_words_[s] = static_cast<uint32_t>((rules.size() + 63) / 64);
      uint32_t pos = 0;
      for (uint32_t rb_i : rules) b_pos_[rb_i] = pos++;
    }
    const size_t rows_per_stripe = num_a_rules / kStripes + 1;
    for (Stripe& st : stripes_) st.rows.assign(rows_per_stripe, kNoRow);
  }

  bool Mark(uint32_t ra_i, SymbolId symbol, uint32_t rb_i) {
    Stripe& st = stripes_[ra_i % kStripes];
    std::lock_guard<std::mutex> lock(st.mu);
    uint64_t row = st.rows[ra_i / kStripes];
    if (row == kNoRow) {
      row = st.arena.size();
      st.arena.resize(st.arena.size() + row_words_[symbol], 0);
      st.rows[ra_i / kStripes] = row;
    }
    const uint32_t pos = b_pos_[rb_i];
    uint64_t& word = st.arena[row + pos / 64];
    const uint64_t bit = 1ull << (pos % 64);
    if ((word & bit) != 0) return false;
    word |= bit;
    return true;
  }

 private:
  static constexpr uint64_t kNoRow = ~0ull;
  struct Stripe {
    std::mutex mu;
    std::vector<uint64_t> rows;
    std::vector<uint64_t> arena;
  };
  Stripe stripes_[kStripes];
  std::vector<uint32_t> b_pos_;
  std::vector<uint32_t> row_words_;
};

struct ParallelIntersectShared {
  ParallelIntersectShared(const NbtaIndex& index_a, const NbtaIndex& index_b)
      : ia(&index_a),
        ib(&index_b),
        a(&index_a.nbta()),
        b(&index_b.nbta()),
        emitted(index_b, index_a.nbta().rules.size()) {}

  const NbtaIndex* ia;
  const NbtaIndex* ib;
  const Nbta* a;
  const Nbta* b;
  StripedPairIndex index;
  StripedEmittedGuard emitted;

  // Global hand-off queue of discovered pairs; idle workers park on `work`.
  // `pending` counts pairs discovered but not yet fully expanded — it
  // reaching zero is the sole termination signal. `stop` is the shared
  // drain flag: the first worker whose checkpoint trips sets it and every
  // worker (running or parked) exits promptly.
  std::mutex mu;
  std::condition_variable work;
  std::vector<std::pair<StateId, StateId>> global;
  std::atomic<size_t> pending{0};
  std::atomic<bool> stop{false};

  // Per-worker outputs and forked contexts, merged after the join.
  struct WorkerOut {
    std::vector<Nbta::BinaryRule> rules;
    std::vector<std::pair<StateId, bool>> discovered;  // (id, accepting)
    size_t rules_scanned = 0;
  };
  std::vector<WorkerOut> outs;
  std::vector<TaOpContext> children;
};

void ParallelIntersectWorker(ParallelIntersectShared& sh, uint32_t w) {
  const Nbta& a = *sh.a;
  const Nbta& b = *sh.b;
  TaOpContext* cctx = &sh.children[w];
  ParallelIntersectShared::WorkerOut& out = sh.outs[w];
  std::vector<std::pair<StateId, StateId>> local;
  size_t next_poll = 4096;
  bool interrupted = false;

  auto intern = [&](StateId x, StateId y) -> StateId {
    bool inserted = false;
    const StateId id = sh.index.FindOrInsert(PackPair(x, y), &inserted);
    if (inserted) {
      out.discovered.push_back({id, a.accepting[x] && b.accepting[y]});
      sh.pending.fetch_add(1, std::memory_order_acq_rel);
      local.push_back({x, y});
    }
    return id;
  };
  auto try_emit = [&](uint32_t ra_i, uint32_t rb_i) {
    ++out.rules_scanned;
    const auto& ra = a.rules[ra_i];
    const auto& rb = b.rules[rb_i];
    if (ra.symbol != rb.symbol) return;
    const StateId l = sh.index.Find(PackPair(ra.left, rb.left));
    if (l == kPairNotFound) return;
    const StateId r = sh.index.Find(PackPair(ra.right, rb.right));
    if (r == kPairNotFound) return;
    if (!sh.emitted.Mark(ra_i, ra.symbol, rb_i)) return;
    const StateId to = intern(ra.to, rb.to);
    out.rules.push_back({ra.symbol, l, r, to});
  };
  auto poll = [&]() {
    if (out.rules_scanned >= next_poll) {
      next_poll = out.rules_scanned + 4096;
      if (!TaCheckpoint(cctx).ok()) interrupted = true;
    }
  };

  for (;;) {
    if (sh.stop.load(std::memory_order_acquire)) break;
    if (local.empty()) {
      std::unique_lock<std::mutex> lock(sh.mu);
      sh.work.wait(lock, [&] {
        return !sh.global.empty() ||
               sh.pending.load(std::memory_order_acquire) == 0 ||
               sh.stop.load(std::memory_order_acquire);
      });
      if (sh.stop.load(std::memory_order_acquire) ||
          (sh.global.empty() &&
           sh.pending.load(std::memory_order_acquire) == 0)) {
        break;
      }
      const size_t take = std::min(sh.global.size(), size_t{64});
      local.assign(sh.global.end() - take, sh.global.end());
      sh.global.resize(sh.global.size() - take);
      continue;
    }

    const auto [xa, xb] = local.back();
    local.pop_back();
    if (!TaCheckpoint(cctx).ok()) interrupted = true;
    if (!interrupted) {
      for (uint32_t ra_i : sh.ia->RulesWithLeft(xa)) {
        for (uint32_t rb_i : sh.ib->RulesWithLeft(xb)) try_emit(ra_i, rb_i);
        poll();
        if (interrupted) break;
      }
    }
    if (!interrupted) {
      for (uint32_t ra_i : sh.ia->RulesWithRight(xa)) {
        for (uint32_t rb_i : sh.ib->RulesWithRight(xb)) try_emit(ra_i, rb_i);
        poll();
        if (interrupted) break;
      }
    }
    // The pair is expanded (or abandoned to the drain); either way it no
    // longer counts against termination. The worker taking `pending` to
    // zero wakes every parked peer so they can observe it.
    if (sh.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(sh.mu);
      sh.work.notify_all();
    }
    if (interrupted) {
      sh.stop.store(true, std::memory_order_release);
      std::lock_guard<std::mutex> lock(sh.mu);
      sh.work.notify_all();
      break;
    }
    // Batched hand-off: once the local stash outgrows what one worker can
    // usefully chew, donate the older half to idle peers.
    if (local.size() > 64) {
      const size_t give = local.size() / 2;
      std::lock_guard<std::mutex> lock(sh.mu);
      sh.global.insert(sh.global.end(), local.end() - give, local.end());
      local.resize(local.size() - give);
      sh.work.notify_all();
    }
  }
  // Flush thread-local accounting into the forked context on every exit
  // path; the parent folds it in via MergeChild after the join.
  TaCountRules(cctx, out.rules_scanned);
}

void IntersectParallel(const NbtaIndex& ia, const NbtaIndex& ib,
                       uint32_t threads, TaOpContext* ctx, Nbta& out) {
  const Nbta& a = ia.nbta();
  const Nbta& b = ib.nbta();
  ParallelIntersectShared sh(ia, ib);

  // Serial seeding: leaf pairs intern in deterministic order, so the leaf
  // block of the state space matches the serial construction and leaf rules
  // land directly in `out`.
  for (SymbolId s = 0; s < a.num_symbols; ++s) {
    for (StateId ta : ia.LeafTargets(s)) {
      for (StateId tb : ib.LeafTargets(s)) {
        bool inserted = false;
        const StateId id = sh.index.FindOrInsert(PackPair(ta, tb), &inserted);
        if (inserted) {
          out.AddState();
          out.accepting[id] = a.accepting[ta] && b.accepting[tb];
          sh.global.push_back({ta, tb});
          sh.pending.fetch_add(1, std::memory_order_relaxed);
        }
        out.AddLeafRule(s, id);
      }
    }
  }

  sh.outs.resize(threads);
  sh.children.reserve(threads);
  for (uint32_t w = 0; w < threads; ++w) {
    sh.children.push_back(ctx != nullptr ? ctx->Fork() : TaOpContext());
  }
  TaThreadPool::Instance().Run(
      threads, [&sh](uint32_t w) { ParallelIntersectWorker(sh, w); });

  // Join: materialize the discovered states, splice the rule buffers, fold
  // the per-worker counters and any sticky interrupt back into the parent.
  const uint32_t total = sh.index.TotalStates();
  while (out.num_states < total) out.AddState();
  size_t total_rules = out.rules.size();
  for (const auto& wo : sh.outs) total_rules += wo.rules.size();
  out.rules.reserve(total_rules);
  for (const auto& wo : sh.outs) {
    for (const auto& [id, acc] : wo.discovered) out.accepting[id] = acc;
    out.rules.insert(out.rules.end(), wo.rules.begin(), wo.rules.end());
  }
  if (ctx != nullptr) {
    for (const TaOpContext& child : sh.children) ctx->MergeChild(child);
  }
}

// Below this many total rules the sharding overhead (striped locks, forked
// contexts, hand-off) outweighs the scan work; the serial path wins.
constexpr size_t kParallelRuleGate = 256;

}  // namespace

Nbta IntersectNbta(const NbtaIndex& ia, const NbtaIndex& ib, TaOpContext* ctx) {
  const Nbta& a = ia.nbta();
  const Nbta& b = ib.nbta();
  PEBBLETC_CHECK(a.num_symbols == b.num_symbols)
      << "intersection over mismatched alphabets";
  TaOpTimer timer(ctx);
  Nbta out;
  out.num_symbols = a.num_symbols;
  const uint32_t threads = TaEffectiveThreads(ctx);
  if (threads > 1 && a.rules.size() + b.rules.size() >= kParallelRuleGate) {
    IntersectParallel(ia, ib, threads, ctx, out);
  } else {
    IntersectSerial(ia, ib, ctx, out);
  }
  if (ctx != nullptr) {
    ctx->counters.intersections++;
    ctx->counters.states_materialized += out.num_states;
  }
  return out;
}

Nbta IntersectNbta(const Nbta& a, const Nbta& b) {
  return IntersectNbta(NbtaIndex(a), NbtaIndex(b), nullptr);
}

Nbta UnionNbta(const Nbta& a, const Nbta& b) {
  PEBBLETC_CHECK(a.num_symbols == b.num_symbols)
      << "union over mismatched alphabets";
  Nbta out;
  out.num_symbols = a.num_symbols;
  for (StateId q = 0; q < a.num_states; ++q) {
    StateId id = out.AddState();
    out.accepting[id] = a.accepting[q];
  }
  const StateId offset = a.num_states;
  for (StateId q = 0; q < b.num_states; ++q) {
    StateId id = out.AddState();
    out.accepting[id] = b.accepting[q];
  }
  out.leaf_rules = a.leaf_rules;
  out.rules = a.rules;
  for (const auto& r : b.leaf_rules) {
    out.AddLeafRule(r.symbol, r.to + offset);
  }
  for (const auto& r : b.rules) {
    out.AddRule(r.symbol, r.left + offset, r.right + offset, r.to + offset);
  }
  return out;
}

namespace {

// States inhabited by at least one tree, worklist-driven off the compiled
// by-child adjacency: each rule is inspected at most twice (once per child
// becoming inhabited). On interruption the fixpoint drains early, leaving an
// *under*-approximation: every marked state really is inhabited, but some
// inhabited states may be unmarked.
std::vector<bool> InhabitedStates(const NbtaIndex& idx,
                                  TaOpContext* ctx = nullptr) {
  const Nbta& a = idx.nbta();
  std::vector<bool> inhabited(a.num_states, false);
  std::vector<StateId> work;
  auto mark = [&](StateId q) {
    if (!inhabited[q]) {
      inhabited[q] = true;
      work.push_back(q);
    }
  };
  for (const auto& r : a.leaf_rules) mark(r.to);
  while (!work.empty()) {
    if (!TaCheckpoint(ctx).ok()) break;
    StateId q = work.back();
    work.pop_back();
    for (uint32_t ri : idx.RulesWithLeft(q)) {
      const Nbta::BinaryRule& r = a.rules[ri];
      if (inhabited[r.right]) mark(r.to);
    }
    for (uint32_t ri : idx.RulesWithRight(q)) {
      const Nbta::BinaryRule& r = a.rules[ri];
      if (inhabited[r.left]) mark(r.to);
    }
  }
  return inhabited;
}

}  // namespace

bool IsEmptyNbta(const NbtaIndex& idx, TaOpContext* ctx) {
  TaOpTimer timer(ctx);
  const Nbta& a = idx.nbta();
  TaCountRules(ctx, a.leaf_rules.size() + a.rules.size());
  std::vector<bool> inhabited = InhabitedStates(idx, ctx);
  for (StateId q : idx.AcceptingStates()) {
    if (inhabited[q]) return false;
  }
  return true;
}

bool IsEmptyNbta(const Nbta& a) { return IsEmptyNbta(NbtaIndex(a), nullptr); }

std::optional<BinaryTree> WitnessTree(const NbtaIndex& idx, TaOpContext* ctx) {
  TaOpTimer timer(ctx);
  const Nbta& a = idx.nbta();
  // Minimal witness sizes per state: worklist relaxation over the rule
  // hypergraph via the by-child adjacency (each improvement re-examines only
  // the rules mentioning the improved state).
  constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();
  std::vector<uint64_t> best(a.num_states, kInf);
  // The realizing rule for each state: leaf (symbol) or binary (rule index).
  std::vector<int64_t> via_leaf(a.num_states, -1);
  std::vector<int64_t> via_rule(a.num_states, -1);
  std::vector<StateId> work;
  std::vector<bool> queued(a.num_states, false);
  auto push = [&](StateId q) {
    if (!queued[q]) {
      queued[q] = true;
      work.push_back(q);
    }
  };

  for (const auto& r : a.leaf_rules) {
    if (best[r.to] > 1) {
      best[r.to] = 1;
      via_leaf[r.to] = r.symbol;
      via_rule[r.to] = -1;
      push(r.to);
    }
  }
  size_t rules_scanned = 0;
  auto relax = [&](uint32_t ri) {
    ++rules_scanned;
    const Nbta::BinaryRule& r = a.rules[ri];
    if (best[r.left] == kInf || best[r.right] == kInf) return;
    uint64_t cost = best[r.left] + best[r.right] + 1;
    if (cost < best[r.to]) {
      best[r.to] = cost;
      via_rule[r.to] = static_cast<int64_t>(ri);
      via_leaf[r.to] = -1;
      push(r.to);
    }
  };
  while (!work.empty()) {
    // Interrupted: stop relaxing. Any witness reconstructed below is still
    // genuine (each recorded realizing rule is valid); only minimality and
    // completeness of the search are lost.
    if (!TaCheckpoint(ctx).ok()) break;
    StateId q = work.back();
    work.pop_back();
    queued[q] = false;
    for (uint32_t ri : idx.RulesWithLeft(q)) relax(ri);
    for (uint32_t ri : idx.RulesWithRight(q)) relax(ri);
  }
  TaCountRules(ctx, rules_scanned);

  StateId target = kNoSymbol;
  uint64_t target_size = kInf;
  for (StateId q : idx.AcceptingStates()) {
    if (best[q] < target_size) {
      target_size = best[q];
      target = q;
    }
  }
  if (target == kNoSymbol) return std::nullopt;

  BinaryTree tree;
  // Build iteratively (post-order) from the recorded realizing rules.
  struct Frame {
    StateId state;
    bool expanded;
  };
  std::vector<Frame> stack = {{target, false}};
  std::vector<NodeId> results;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (via_rule[f.state] < 0) {
      PEBBLETC_CHECK(via_leaf[f.state] >= 0) << "no realizing rule";
      results.push_back(
          tree.AddLeaf(static_cast<SymbolId>(via_leaf[f.state])));
    } else if (!f.expanded) {
      const auto& r = a.rules[via_rule[f.state]];
      stack.push_back({f.state, true});
      stack.push_back({r.right, false});
      stack.push_back({r.left, false});
    } else {
      const auto& r = a.rules[via_rule[f.state]];
      NodeId right = results.back();
      results.pop_back();
      NodeId left = results.back();
      results.pop_back();
      results.push_back(tree.AddInternal(r.symbol, left, right));
    }
  }
  PEBBLETC_CHECK(results.size() == 1) << "witness stack imbalance";
  tree.SetRoot(results.back());
  return tree;
}

std::optional<BinaryTree> WitnessTree(const Nbta& a) {
  return WitnessTree(NbtaIndex(a), nullptr);
}

Result<bool> NbtaIncludes(const Nbta& super, const Nbta& sub,
                          const RankedAlphabet& alphabet, TaOpContext* ctx) {
  NbtaIndex sub_idx(sub, ctx);
  NbtaIndex super_idx(super, ctx);
  PEBBLETC_ASSIGN_OR_RETURN(
      NbtaInclusionResult r,
      NbtaIncludedIn(sub_idx, super_idx, alphabet, ctx));
  return r.included;
}

Result<bool> NbtaIncludes(const Nbta& super, const Nbta& sub,
                          const RankedAlphabet& alphabet, size_t max_states) {
  TaOpContext ctx;
  // Legacy single-knob form: the one cap bounds whichever engine runs (the
  // antichain pair arena here; determinization in ops reached downstream).
  ctx.budgets.max_det_states = max_states;
  if (max_states != 0) ctx.budgets.max_antichain_pairs = max_states;
  return NbtaIncludes(super, sub, alphabet, &ctx);
}

Result<bool> NbtaEquivalent(const Nbta& a, const Nbta& b,
                            const RankedAlphabet& alphabet, TaOpContext* ctx) {
  PEBBLETC_ASSIGN_OR_RETURN(bool ab, NbtaIncludes(b, a, alphabet, ctx));
  if (!ab) return false;
  return NbtaIncludes(a, b, alphabet, ctx);
}

Result<bool> NbtaEquivalent(const Nbta& a, const Nbta& b,
                            const RankedAlphabet& alphabet,
                            size_t max_states) {
  TaOpContext ctx;
  ctx.budgets.max_det_states = max_states;
  if (max_states != 0) ctx.budgets.max_antichain_pairs = max_states;
  return NbtaEquivalent(a, b, alphabet, &ctx);
}

Nbta TrimNbta(const NbtaIndex& idx, TaOpContext* ctx) {
  TaOpTimer timer(ctx);
  const Nbta& a = idx.nbta();
  std::vector<bool> inhabited = InhabitedStates(idx, ctx);
  // Co-reachable: can contribute to an accepted run. Worklist over the
  // reverse by-target adjacency; each rule is visited once (when its target
  // is popped).
  std::vector<bool> useful(a.num_states, false);
  std::vector<StateId> work;
  auto mark = [&](StateId q) {
    if (!useful[q]) {
      useful[q] = true;
      work.push_back(q);
    }
  };
  for (StateId q : idx.AcceptingStates()) {
    if (inhabited[q]) mark(q);
  }
  while (!work.empty()) {
    // Interrupted: the trim keeps fewer states than it could; the result
    // still only contains sound rules (a subset of the input automaton).
    if (!TaCheckpoint(ctx).ok()) break;
    StateId q = work.back();
    work.pop_back();
    for (uint32_t ri : idx.RulesWithTarget(q)) {
      const Nbta::BinaryRule& r = a.rules[ri];
      if (inhabited[r.left] && inhabited[r.right]) {
        mark(r.left);
        mark(r.right);
      }
    }
  }

  std::vector<StateId> remap(a.num_states, kNoSymbol);
  Nbta out;
  out.num_symbols = a.num_symbols;
  for (StateId q = 0; q < a.num_states; ++q) {
    if (useful[q] && inhabited[q]) {
      remap[q] = out.AddState();
      out.accepting[remap[q]] = a.accepting[q];
    }
  }
  for (const auto& r : a.leaf_rules) {
    if (remap[r.to] != kNoSymbol) out.AddLeafRule(r.symbol, remap[r.to]);
  }
  for (const auto& r : a.rules) {
    if (remap[r.to] != kNoSymbol && remap[r.left] != kNoSymbol &&
        remap[r.right] != kNoSymbol) {
      out.AddRule(r.symbol, remap[r.left], remap[r.right], remap[r.to]);
    }
  }
  // Guarantee at least one state so downstream code can assume non-zero.
  if (out.num_states == 0) out.AddState();
  if (ctx != nullptr) {
    ctx->counters.trims++;
    ctx->counters.states_materialized += out.num_states;
    ctx->counters.rules_scanned += a.leaf_rules.size() + 2 * a.rules.size();
  }
  return out;
}

Nbta TrimNbta(const Nbta& a) { return TrimNbta(NbtaIndex(a), nullptr); }

Nbta InverseRelabelNbta(const NbtaIndex& idx, const std::vector<SymbolId>& map,
                        uint32_t new_num_symbols, TaOpContext* ctx) {
  TaOpTimer timer(ctx);
  const Nbta& a = idx.nbta();
  Nbta out;
  out.num_states = a.num_states;
  out.accepting = a.accepting;
  out.num_symbols = new_num_symbols;
  for (SymbolId big = 0; big < new_num_symbols; ++big) {
    PEBBLETC_CHECK(big < map.size() && map[big] < a.num_symbols)
        << "unmapped symbol " << big;
    for (StateId to : idx.LeafTargets(map[big])) out.AddLeafRule(big, to);
    for (uint32_t ri : idx.RulesWithSymbol(map[big])) {
      const Nbta::BinaryRule& r = a.rules[ri];
      out.AddRule(big, r.left, r.right, r.to);
    }
  }
  TaCountRules(ctx, out.leaf_rules.size() + out.rules.size());
  return out;
}

Nbta InverseRelabelNbta(const Nbta& a, const std::vector<SymbolId>& map,
                        uint32_t new_num_symbols) {
  return InverseRelabelNbta(NbtaIndex(a), map, new_num_symbols, nullptr);
}

Nbta RelabelNbta(const Nbta& a, const std::vector<SymbolId>& map,
                 uint32_t new_num_symbols) {
  Nbta out;
  out.num_states = a.num_states;
  out.accepting = a.accepting;
  out.num_symbols = new_num_symbols;
  for (const auto& r : a.leaf_rules) {
    PEBBLETC_CHECK(r.symbol < map.size() && map[r.symbol] < new_num_symbols)
        << "unmapped symbol " << r.symbol;
    out.AddLeafRule(map[r.symbol], r.to);
  }
  for (const auto& r : a.rules) {
    PEBBLETC_CHECK(r.symbol < map.size() && map[r.symbol] < new_num_symbols)
        << "unmapped symbol " << r.symbol;
    out.AddRule(map[r.symbol], r.left, r.right, r.to);
  }
  return out;
}

Result<Dbta> MinimizeDbta(const Dbta& d, const RankedAlphabet& alphabet,
                          TaOpContext* ctx) {
  if (alphabet.size() != d.num_symbols()) {
    return Status::InvalidArgument("alphabet size mismatch in minimize");
  }
  TaOpTimer timer(ctx);
  const uint32_t n = d.num_states();

  // Inhabited states (reachable bottom-up); everything else collapses into
  // whatever block its signature lands in — harmless, but restricting keeps
  // the refinement honest and the result canonical.
  std::vector<bool> inhabited(n, false);
  {
    bool changed = true;
    for (SymbolId a : alphabet.LeafSymbols()) inhabited[d.LeafState(a)] = true;
    while (changed) {
      changed = false;
      for (SymbolId a : alphabet.BinarySymbols()) {
        for (StateId l = 0; l < n; ++l) {
          if (!inhabited[l]) continue;
          PEBBLETC_RETURN_IF_ERROR(TaCheckpoint(ctx));
          for (StateId r = 0; r < n; ++r) {
            if (!inhabited[r]) continue;
            StateId to = d.Next(a, l, r);
            if (!inhabited[to]) {
              inhabited[to] = true;
              changed = true;
            }
          }
        }
      }
    }
  }
  std::vector<StateId> live;  // inhabited states, dense order
  std::vector<int64_t> live_index(n, -1);
  for (StateId q = 0; q < n; ++q) {
    if (inhabited[q]) {
      live_index[q] = static_cast<int64_t>(live.size());
      live.push_back(q);
    }
  }
  const size_t m = live.size();
  if (m == 0) {
    // Empty language (no leaf symbols): a one-state reject automaton.
    Dbta out(1, d.num_symbols());
    return out;
  }

  // Moore refinement over inhabited states. Signatures within one round all
  // have the same length, so each round interns fixed-length rows into a
  // flat arena behind an open-addressing table (block id = order of first
  // appearance) — the same discipline as the product's pair interner; the
  // node-based map this replaces allocated one tree node per distinct
  // signature per round.
  std::vector<uint32_t> block(m);
  for (size_t i = 0; i < m; ++i) block[i] = d.accepting(live[i]) ? 1 : 0;
  size_t num_blocks = 2;
  const size_t sig_len = 1 + 2 * alphabet.BinarySymbols().size() * m;
  // At most m distinct signatures per round: a capacity with load <= 9/16 at
  // m entries never needs to grow mid-round.
  size_t sig_cap = 64;
  while (sig_cap * 9 < m * 16) sig_cap *= 2;
  std::vector<uint32_t> sig_arena;
  std::vector<uint32_t> sig_table;
  std::vector<uint32_t> next_block(m);
  std::vector<uint32_t> sig(sig_len);
  for (bool changed = true; changed;) {
    changed = false;
    sig_arena.clear();
    sig_table.assign(sig_cap, ~0u);
    size_t interned = 0;
    for (size_t i = 0; i < m; ++i) {
      PEBBLETC_RETURN_IF_ERROR(TaCheckpoint(ctx));
      size_t k = 0;
      sig[k++] = block[i];
      for (SymbolId a : alphabet.BinarySymbols()) {
        for (size_t j = 0; j < m; ++j) {
          StateId as_left = d.Next(a, live[i], live[j]);
          StateId as_right = d.Next(a, live[j], live[i]);
          // Successors outside the inhabited set cannot occur in any run.
          sig[k++] = live_index[as_left] < 0 ? ~0u
                                             : block[live_index[as_left]];
          sig[k++] = live_index[as_right] < 0 ? ~0u
                                              : block[live_index[as_right]];
        }
      }
      uint64_t h = 1469598103934665603ull;  // FNV-1a 64 over the row words
      for (uint32_t v : sig) h = (h ^ v) * 1099511628211ull;
      size_t slot = h & (sig_cap - 1);
      uint32_t id = ~0u;
      for (;;) {
        const uint32_t cand = sig_table[slot];
        if (cand == ~0u) break;
        if (std::equal(sig.begin(), sig.end(),
                       sig_arena.begin() + cand * sig_len)) {
          id = cand;
          break;
        }
        slot = (slot + 1) & (sig_cap - 1);
      }
      if (id == ~0u) {
        id = static_cast<uint32_t>(interned++);
        sig_table[slot] = id;
        sig_arena.insert(sig_arena.end(), sig.begin(), sig.end());
      }
      next_block[i] = id;
    }
    if (interned != num_blocks) changed = true;
    num_blocks = interned;
    std::swap(block, next_block);
  }

  // Emit blocks (+ a sink for transitions leaving the inhabited set). The
  // sink may be unreachable; that is fine for a complete automaton.
  const uint32_t sink = static_cast<uint32_t>(num_blocks);
  Dbta out(static_cast<uint32_t>(num_blocks) + 1, d.num_symbols());
  auto block_of = [&](StateId q) -> StateId {
    return live_index[q] < 0 ? sink
                             : static_cast<StateId>(block[live_index[q]]);
  };
  for (size_t i = 0; i < m; ++i) {
    out.set_accepting(block[i], d.accepting(live[i]));
  }
  for (SymbolId a : alphabet.LeafSymbols()) {
    out.SetLeafState(a, block_of(d.LeafState(a)));
  }
  // Representative per block for transition lookups.
  std::vector<StateId> rep(num_blocks, 0);
  for (size_t i = m; i-- > 0;) rep[block[i]] = live[i];
  for (SymbolId a : alphabet.BinarySymbols()) {
    for (uint32_t bi = 0; bi < num_blocks; ++bi) {
      for (uint32_t bj = 0; bj < num_blocks; ++bj) {
        out.SetNext(a, bi, bj, block_of(d.Next(a, rep[bi], rep[bj])));
      }
      out.SetNext(a, bi, sink, sink);
      out.SetNext(a, sink, bi, sink);
    }
    out.SetNext(a, sink, sink, sink);
  }
  if (ctx != nullptr) {
    ctx->counters.minimizations++;
    ctx->counters.states_materialized += out.num_states();
  }
  return out;
}

Nbta UniversalNbta(const RankedAlphabet& alphabet) {
  Nbta out;
  out.num_symbols = static_cast<uint32_t>(alphabet.size());
  StateId q = out.AddState();
  out.accepting[q] = true;
  for (SymbolId a : alphabet.LeafSymbols()) out.AddLeafRule(a, q);
  for (SymbolId a : alphabet.BinarySymbols()) out.AddRule(a, q, q, q);
  return out;
}

Nbta EmptyLanguageNbta(const RankedAlphabet& alphabet) {
  Nbta out;
  out.num_symbols = static_cast<uint32_t>(alphabet.size());
  out.AddState();  // inert, non-accepting
  return out;
}

uint64_t CountAcceptedTrees(const Nbta& a, size_t num_nodes) {
  if (num_nodes == 0 || num_nodes % 2 == 0) return 0;
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  auto sat_add = [](uint64_t x, uint64_t y) {
    return (x > kMax - y) ? kMax : x + y;
  };
  auto sat_mul = [](uint64_t x, uint64_t y) -> uint64_t {
    if (x == 0 || y == 0) return 0;
    if (x > kMax / y) return kMax;
    return x * y;
  };
  // count[s][q]: trees with s nodes evaluating to q (s odd).
  std::vector<std::vector<uint64_t>> count(
      num_nodes + 1, std::vector<uint64_t>(a.num_states, 0));
  for (const auto& r : a.leaf_rules) {
    count[1][r.to] = sat_add(count[1][r.to], 1);
  }
  for (size_t s = 3; s <= num_nodes; s += 2) {
    for (const auto& r : a.rules) {
      for (size_t s1 = 1; s1 <= s - 2; s1 += 2) {
        size_t s2 = s - 1 - s1;
        uint64_t c = sat_mul(count[s1][r.left], count[s2][r.right]);
        if (c != 0) count[s][r.to] = sat_add(count[s][r.to], c);
      }
    }
  }
  uint64_t total = 0;
  for (StateId q = 0; q < a.num_states; ++q) {
    if (a.accepting[q]) total = sat_add(total, count[num_nodes][q]);
  }
  return total;
}

}  // namespace pebbletc
