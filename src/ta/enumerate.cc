#include "src/ta/enumerate.h"

#include <string>
#include <unordered_set>
#include <utility>

#include "src/common/check.h"

namespace pebbletc {

namespace {

// Canonical structural key of a subtree, independent of node ids.
void AppendKey(const BinaryTree& t, NodeId n, std::string* out) {
  *out += std::to_string(t.symbol(n));
  if (!t.IsLeaf(n)) {
    *out += '(';
    AppendKey(t, t.left(n), out);
    *out += ',';
    AppendKey(t, t.right(n), out);
    *out += ')';
  }
}

std::string Key(const BinaryTree& t) {
  std::string out;
  AppendKey(t, t.root(), &out);
  return out;
}

}  // namespace

std::vector<BinaryTree> EnumerateAcceptedTrees(const Nbta& a, size_t max_nodes,
                                               size_t max_count,
                                               TaOpContext* ctx) {
  TaOpTimer timer(ctx);
  std::vector<BinaryTree> out;
  if (max_nodes == 0 || max_count == 0) return out;

  // per_state[q][s] = distinct trees of size s evaluating to q. Sizes are
  // odd; index by size directly for clarity.
  std::vector<std::vector<std::vector<BinaryTree>>> per_state(
      a.num_states, std::vector<std::vector<BinaryTree>>(max_nodes + 1));
  std::vector<std::vector<std::unordered_set<std::string>>> seen(
      a.num_states,
      std::vector<std::unordered_set<std::string>>(max_nodes + 1));

  auto add = [&](StateId q, size_t s, BinaryTree tree) {
    std::string key = Key(tree);
    if (seen[q][s].insert(std::move(key)).second) {
      per_state[q][s].push_back(std::move(tree));
    }
  };

  for (const Nbta::LeafRule& r : a.leaf_rules) {
    BinaryTree t;
    t.SetRoot(t.AddLeaf(r.symbol));
    add(r.to, 1, std::move(t));
  }

  std::unordered_set<std::string> emitted;
  auto emit_size = [&](size_t s) {
    for (StateId q = 0; q < a.num_states && out.size() < max_count; ++q) {
      if (!a.accepting[q]) continue;
      for (const BinaryTree& t : per_state[q][s]) {
        if (emitted.insert(Key(t)).second) {
          out.push_back(t);
          if (out.size() >= max_count) break;
        }
      }
    }
  };

  emit_size(1);
  for (size_t s = 3; s <= max_nodes && out.size() < max_count; s += 2) {
    for (const Nbta::BinaryRule& r : a.rules) {
      for (size_t s1 = 1; s1 + 2 <= s; s1 += 2) {
        // Interrupted: return the trees emitted so far — each is a genuine
        // accepted tree; only exhaustiveness of the sweep is lost.
        if (!TaCheckpoint(ctx).ok()) return out;
        const size_t s2 = s - 1 - s1;
        for (const BinaryTree& lt : per_state[r.left][s1]) {
          for (const BinaryTree& rt : per_state[r.right][s2]) {
            BinaryTree combined;
            NodeId l = combined.CopySubtree(lt, lt.root());
            NodeId rr = combined.CopySubtree(rt, rt.root());
            combined.SetRoot(combined.AddInternal(r.symbol, l, rr));
            add(r.to, s, std::move(combined));
          }
        }
      }
    }
    emit_size(s);
  }
  return out;
}

}  // namespace pebbletc
