// Compiled, immutable rule indexes for bottom-up tree automata.
//
// Every operation on an Nbta needs some grouping of the flat rule vectors:
// per-symbol buckets (membership, relabelings), by-(symbol, left-state)
// adjacency (determinization), by-child-state lists (products, reachability),
// reverse by-target lists (trimming, witness extraction). Historically each
// operation rebuilt its own ad-hoc index on every call; an NbtaIndex is
// built once per automaton — O(|states| + |rules|) time, compressed-sparse-
// row storage — and shared by every operation that consumes the automaton.
//
// The index holds a pointer to the automaton it was built from; the
// automaton must outlive the index and must not be mutated afterwards
// (AddRule after indexing silently desynchronizes the two).

#ifndef PEBBLETC_TA_NBTA_INDEX_H_
#define PEBBLETC_TA_NBTA_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/regex/nfa.h"  // StateId
#include "src/ta/csr.h"
#include "src/ta/nbta.h"
#include "src/ta/op_context.h"

namespace pebbletc {

class NbtaIndex {
 public:
  /// Builds all eager sub-indexes. `ctx` (optional) accrues the build cost
  /// into its counters.
  explicit NbtaIndex(const Nbta& a, TaOpContext* ctx = nullptr);

  NbtaIndex(const NbtaIndex&) = delete;
  NbtaIndex& operator=(const NbtaIndex&) = delete;

  const Nbta& nbta() const { return *a_; }
  uint32_t num_states() const { return a_->num_states; }
  uint32_t num_symbols() const { return a_->num_symbols; }

  /// Leaf-rule target states for `symbol` (duplicates preserved).
  std::span<const StateId> LeafTargets(SymbolId symbol) const {
    return leaf_by_symbol_.Row(symbol);
  }

  /// Indices into nbta().rules of the binary rules labelled `symbol`.
  std::span<const uint32_t> RulesWithSymbol(SymbolId symbol) const {
    return by_symbol_.Row(symbol);
  }

  /// Indices into nbta().rules of rules whose left / right child is `q`.
  std::span<const uint32_t> RulesWithLeft(StateId q) const {
    return by_left_.Row(q);
  }
  std::span<const uint32_t> RulesWithRight(StateId q) const {
    return by_right_.Row(q);
  }

  /// Indices into nbta().rules of rules whose target state is `q`.
  std::span<const uint32_t> RulesWithTarget(StateId q) const {
    return by_target_.Row(q);
  }
  /// Indices into nbta().leaf_rules of leaf rules targeting `q`.
  std::span<const uint32_t> LeafRulesWithTarget(StateId q) const {
    return leaf_by_target_.Row(q);
  }

  /// (right child, target) successors of the rules labelled `symbol` with
  /// left child `left` — the determinization adjacency. Built lazily on
  /// first use (its row count is |Σ|·|Q|, which only the subset
  /// construction needs); not thread-safe.
  struct RightTo {
    StateId right;
    StateId to;
  };
  std::span<const RightTo> SymbolLeft(SymbolId symbol, StateId left) const;

  /// True when the automaton is small enough (≤ kDenseMaskMaxStates states)
  /// for the dense determinization fast path: subsets fit one machine word
  /// and transitions reduce to mask folds over SuccessorMasks().
  static constexpr uint32_t kDenseMaskMaxStates = 16;
  bool DenseMasksApplicable() const {
    return a_->num_states <= kDenseMaskMaxStates;
  }

  /// Row-major |Q|×|Q| table for `symbol`: entry [q1*|Q| + q2] is the bitmask
  /// of states q with a rule symbol(q1, q2) → q. Only valid when
  /// DenseMasksApplicable(); built lazily for all symbols on first use
  /// (|Σ|·|Q|² uint32 entries — at most 256 per symbol); not thread-safe.
  std::span<const uint32_t> SuccessorMasks(SymbolId symbol) const;

  /// The accepting states, as a list.
  std::span<const StateId> AcceptingStates() const {
    return accepting_states_;
  }
  /// True if some accepting state appears in `set` (bitset over states).
  bool AnyAccepting(const std::vector<bool>& set) const {
    for (StateId q : accepting_states_) {
      if (set[q]) return true;
    }
    return false;
  }

 private:
  const Nbta* a_;
  Csr<StateId> leaf_by_symbol_;
  Csr<uint32_t> by_symbol_;
  Csr<uint32_t> by_left_;
  Csr<uint32_t> by_right_;
  Csr<uint32_t> by_target_;
  Csr<uint32_t> leaf_by_target_;
  std::vector<StateId> accepting_states_;

  mutable bool symbol_left_built_ = false;
  mutable Csr<RightTo> symbol_left_;

  mutable bool dense_masks_built_ = false;
  mutable std::vector<uint32_t> dense_masks_;
};

}  // namespace pebbletc

#endif  // PEBBLETC_TA_NBTA_INDEX_H_
