// Unified budget + metrics + execution-control context for tree-automaton
// operations.
//
// Every potentially expensive automaton operation (determinization, subset
// constructions, products, trims, behavior composition) historically took its
// own loose `max_states`-style parameter and reported nothing back. A
// TaOpContext bundles all budgets in one place and accumulates counters as
// the operation pipeline runs, so a whole typechecking run (Theorem 4.4's
// three passes, dozens of chained automaton ops) shares one accounting
// surface: how many states were materialized, how many rules scanned, how
// many determinizations ran, and how much wall time the automaton layer
// consumed. TypecheckResult surfaces the counters to callers.
//
// Beyond budgets, the context is the pipeline's *execution-control* layer
// (the worst case is non-elementary — Theorem 4.8 — so runaway loops must be
// interruptible): a wall-clock `deadline`, an external cooperative `cancel`
// flag, and a deterministic fault injector all surface through one cheap
// call, `TaCheckpoint(ctx)`, placed inside every worklist fixpoint and
// subset-closure loop. Deadline/cancel/injected faults are *sticky*: once a
// checkpoint trips, every later checkpoint on the same context returns the
// same Status, so partially built structures drain quickly and the failure
// propagates to the pipeline boundary with its original code intact.
//
// Threading convention: operations take `TaOpContext*` (nullptr = default
// budgets, no accounting, no interruption). Budgets of 0 mean "unlimited".
//
// Thread-safety contract (the merge-on-join model, docs/PARALLEL.md): a
// context is owned by exactly one thread at a time — only the cancel flag it
// points at may be flipped from elsewhere. Parallel operations never share a
// context between workers; each worker share runs on its own Fork() child
// (same deadline/cancel/stride, zeroed counters, no fault injector), workers
// accumulate counters thread-locally into that child, and the joining thread
// calls MergeChild() once per worker — on every exit path, including
// interrupted drains — so the parent's counters and sticky interrupt reflect
// the whole fan-out. Debug builds assert that Checkpoint() is never invoked
// from two threads concurrently (see the owner-thread check below).

#ifndef PEBBLETC_TA_OP_CONTEXT_H_
#define PEBBLETC_TA_OP_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "src/common/check.h"
#include "src/common/status.h"

namespace pebbletc {

/// Memoization policy for the content-addressed op cache (docs/CACHING.md).
enum class TaMemoMode : uint8_t {
  /// Every op computes cold. The default: the serial oracle, the
  /// fault-injection harness, and all legacy callers see exactly the
  /// pre-cache behavior.
  kOff = 0,
  /// Probe/populate the in-process TaOpCache.
  kInMemory = 1,
  /// As kInMemory, with entries persisted to the cache's attached directory
  /// so hot artifacts survive across processes.
  kPersistent = 2,
};

/// All resource budgets consumed by the automaton layer. 0 = unlimited.
struct TaOpBudgets {
  /// States per determinization / subset construction (complementation
  /// determinizes internally; inclusion/equivalence instead run the
  /// antichain search bounded by `max_antichain_pairs` below).
  size_t max_det_states = 200000;
  /// Per-tree configuration space for the Prop. 3.8 output automaton.
  size_t max_configs = 1u << 20;
  /// (A-state, B-state-set) pairs interned by the antichain inclusion search
  /// (docs/INCLUSION.md). The antichain prunes dominated pairs, so this is
  /// normally far below the 2^|Q_B| subsets an explicit determinization would
  /// intern — but the worst case is still exponential, and the search aborts
  /// with kResourceExhausted once the cap is crossed.
  size_t max_antichain_pairs = 200000;
  /// Subset budget for the downward fast path's lazy construction.
  size_t fastpath_max_states = 100000;
  /// 1-pebble behavior composition: refuse automata beyond this many state
  /// bits (tables are 2^bits entries), and this many distinct behaviors.
  uint32_t behavior_max_state_bits = 12;
  size_t behavior_max_behaviors = 4096;
  /// Absolute wall-clock deadline; checkpoints return kDeadlineExceeded once
  /// steady_clock::now() passes it. Unset = no deadline.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// External cancellation flag, polled (relaxed) at every checkpoint. The
  /// pointee must outlive the context; may be flipped from another thread.
  const std::atomic<bool>* cancel = nullptr;
  /// Poll the clock only every `checkpoint_stride` checkpoints — clock reads
  /// dominate checkpoint cost, the counter bump is nearly free. Cancel and
  /// fault injection are checked every call regardless.
  uint32_t checkpoint_stride = 256;
  /// Worker count for the parallel execution layer (docs/PARALLEL.md):
  /// 0 = hardware concurrency (the default), 1 = the serial path (bit-for-
  /// bit the pre-parallel behavior, and the only configuration with
  /// deterministic checkpoint ordinals). Values above 1 let the hot
  /// operations (IntersectNbta, the diffcheck sweep, op-level forks in the
  /// typechecker) shard across TaThreadPool. A context carrying a fault
  /// injector always runs serial regardless (injection ordinals must stay
  /// deterministic); see TaEffectiveThreads in src/ta/thread_pool.h.
  uint32_t num_threads = 0;
  /// Content-addressed memoization of expensive ops through TaAlgebra
  /// (docs/CACHING.md). Off by default; a context carrying a fault injector
  /// is always served cold regardless, so injection ordinals and unwind
  /// paths stay deterministic.
  TaMemoMode memo = TaMemoMode::kOff;
};

/// Counters accumulated across every operation run under one context.
struct TaOpCounters {
  /// States created across all result automata (determinization subsets,
  /// product pairs, trim survivors, ...).
  size_t states_materialized = 0;
  /// Transition rules visited while running operations (a proxy for work
  /// done; index construction counts each rule once).
  size_t rules_scanned = 0;
  /// Completed determinizations / subset constructions.
  size_t determinizations = 0;
  /// (left-subset, right-subset, symbol) frontier pairs expanded by subset
  /// constructions. With the frontier-driven engine each pair is expanded
  /// exactly once, so this is the construction's true work measure — the
  /// retired pass-rescan fixpoint revisited pairs every pass.
  size_t det_pairs_expanded = 0;
  /// Distinct subsets interned by subset constructions, counted as they are
  /// created (not just on success) so an exhausted run still reports how far
  /// the frontier got.
  size_t det_subsets_interned = 0;
  /// Complementations (each implies a determinization).
  size_t complementations = 0;
  /// Completed antichain inclusion checks (NbtaIncludedIn runs that reached
  /// a verdict; exhausted/interrupted runs do not count).
  size_t inclusions = 0;
  /// (A-state, B-state-set) pairs interned by antichain inclusion searches,
  /// counted as they are created (not just on success) so an exhausted run
  /// still reports how far the frontier got.
  size_t incl_pairs_interned = 0;
  /// Candidate pairs discarded by antichain subsumption (a kept pair with a
  /// ⊆-smaller B-set already dominated them) — the savings the antichain
  /// buys over the explicit subset construction.
  size_t incl_pairs_pruned = 0;
  /// Product constructions (intersections and transducer products).
  size_t intersections = 0;
  /// TrimNbta runs.
  size_t trims = 0;
  /// MinimizeDbta runs.
  size_t minimizations = 0;
  /// NbtaIndex instances compiled.
  size_t indexes_built = 0;
  /// TaCheckpoint calls observed (the fault injector's ordinal space).
  uint64_t checkpoints = 0;
  /// Total wall time spent inside timed automaton operations.
  uint64_t op_nanos = 0;
  /// Content-addressed op cache traffic (docs/CACHING.md): probes answered
  /// from the cache, probes that fell through to a cold compute, entries
  /// evicted by inserts issued under this context, and payload bytes this
  /// context inserted.
  size_t memo_hits = 0;
  size_t memo_misses = 0;
  size_t memo_evictions = 0;
  size_t memo_bytes = 0;
  /// Validation fast path (docs/VALIDATION.md): membership queries answered
  /// by a compiled DBTA run table (streaming or tree pass), and queries that
  /// fell back to the NbtaAccepts reach-set route because the table could not
  /// be compiled within budget.
  size_t membership_fast_hits = 0;
  size_t membership_fallbacks = 0;
};

/// Deterministic fault injection: trips the `trip_at`-th checkpoint observed
/// on the context (0-based) with `code`, exactly once. Checkpoint ordinals
/// are deterministic for a fixed workload, so a test harness can sweep
/// `trip_at` across a whole pipeline run and prove every interruption point
/// unwinds cleanly. `seen`/`tripped` are filled in by the context.
struct TaFaultInjector {
  uint64_t trip_at = 0;
  StatusCode code = StatusCode::kDeadlineExceeded;
  /// Checkpoints observed so far (output).
  uint64_t seen = 0;
  /// Whether the fault fired (output).
  bool tripped = false;
};

/// Budgets + counters + interrupt state, threaded as a single pointer
/// through the pipeline.
class TaOpContext {
 public:
  TaOpContext() = default;
  explicit TaOpContext(const TaOpBudgets& budgets) : budgets(budgets) {}
  // Copies transfer budgets/counters/interrupt state but never the (debug-
  // only, non-copyable) concurrency guard — a copy starts unobserved.
  TaOpContext(const TaOpContext& other)
      : budgets(other.budgets),
        counters(other.counters),
        fault(other.fault),
        interrupted_(other.interrupted_),
        interrupt_(other.interrupt_),
        timer_depth_(other.timer_depth_) {}
  TaOpContext& operator=(const TaOpContext& other) {
    budgets = other.budgets;
    counters = other.counters;
    fault = other.fault;
    interrupted_ = other.interrupted_;
    interrupt_ = other.interrupt_;
    timer_depth_ = other.timer_depth_;
    return *this;
  }

  TaOpBudgets budgets;
  TaOpCounters counters;
  /// Optional deterministic fault hook; not owned.
  TaFaultInjector* fault = nullptr;

  /// Budget check helper: OK while `n <= budget` or budget is 0.
  static Status CheckBudget(size_t n, size_t budget, const char* what) {
    if (budget != 0 && n > budget) {
      return Status::ResourceExhausted(std::string(what) + " exceeded budget of " +
                                       std::to_string(budget) + " (needed " +
                                       std::to_string(n) + ")");
    }
    return Status::OK();
  }

  /// A worker-share child for the merge-on-join model: same budgets
  /// (deadline, cancel flag, stride, state caps), zeroed counters, no fault
  /// injector (injection ordinals are only deterministic on the serial
  /// path), and the parent's sticky interrupt if one already tripped — a
  /// share forked after cancellation drains immediately. The child is
  /// independently checkpointable from its worker thread.
  TaOpContext Fork() const {
    TaOpContext child(budgets);
    child.budgets.num_threads = 1;  // shares do not re-fan-out
    if (interrupted_) (void)child.SetInterrupt(interrupt_);
    // The fork region runs under the parent's (outermost) TaOpTimer; mark
    // the child's timer depth so nested timed ops never double-count wall
    // time into the merged op_nanos.
    child.timer_depth_ = 1;
    return child;
  }

  /// Folds a joined worker share back into this context: counters add, and
  /// the first child interrupt becomes the parent's sticky interrupt (so a
  /// deadline or cancellation observed by any worker propagates with its
  /// original code). Call exactly once per Fork(), after joining the worker.
  void MergeChild(const TaOpContext& child) {
    counters.states_materialized += child.counters.states_materialized;
    counters.rules_scanned += child.counters.rules_scanned;
    counters.determinizations += child.counters.determinizations;
    counters.det_pairs_expanded += child.counters.det_pairs_expanded;
    counters.det_subsets_interned += child.counters.det_subsets_interned;
    counters.complementations += child.counters.complementations;
    counters.inclusions += child.counters.inclusions;
    counters.incl_pairs_interned += child.counters.incl_pairs_interned;
    counters.incl_pairs_pruned += child.counters.incl_pairs_pruned;
    counters.intersections += child.counters.intersections;
    counters.trims += child.counters.trims;
    counters.minimizations += child.counters.minimizations;
    counters.indexes_built += child.counters.indexes_built;
    counters.checkpoints += child.counters.checkpoints;
    counters.op_nanos += child.counters.op_nanos;
    counters.memo_hits += child.counters.memo_hits;
    counters.memo_misses += child.counters.memo_misses;
    counters.memo_evictions += child.counters.memo_evictions;
    counters.memo_bytes += child.counters.memo_bytes;
    counters.membership_fast_hits += child.counters.membership_fast_hits;
    counters.membership_fallbacks += child.counters.membership_fallbacks;
    if (!interrupted_ && child.interrupted_) (void)SetInterrupt(child.interrupt_);
  }

  /// The cheap cooperative interruption point. Returns the sticky interrupt
  /// if one already tripped; otherwise checks (in order) the fault injector,
  /// the cancel flag, and — every `checkpoint_stride` calls — the deadline.
  /// Once non-OK, every subsequent call returns the same Status.
  Status Checkpoint() {
    AssertSingleThreaded();
    if (interrupted_) return interrupt_;
    const uint64_t n = counters.checkpoints++;
    if (fault != nullptr) {
      fault->seen = counters.checkpoints;
      if (!fault->tripped && n == fault->trip_at) {
        fault->tripped = true;
        return SetInterrupt(Status(
            fault->code, "fault injected at checkpoint " + std::to_string(n)));
      }
    }
    if (budgets.cancel != nullptr &&
        budgets.cancel->load(std::memory_order_relaxed)) {
      return SetInterrupt(Status::Cancelled("operation cancelled by caller"));
    }
    if (budgets.deadline.has_value()) {
      const uint32_t stride =
          budgets.checkpoint_stride == 0 ? 1 : budgets.checkpoint_stride;
      if (n % stride == 0 &&
          std::chrono::steady_clock::now() >= *budgets.deadline) {
        return SetInterrupt(
            Status::DeadlineExceeded("pipeline deadline elapsed"));
      }
    }
    return Status::OK();
  }

  /// The sticky interrupt (OK if no checkpoint has tripped). Value-returning
  /// operations that bail out early on interruption leave the context in
  /// this state; callers consult it before trusting a "complete" result.
  const Status& interrupt() const { return interrupt_; }
  bool interrupted() const { return interrupted_; }

 private:
  Status SetInterrupt(Status s) {
    interrupted_ = true;
    interrupt_ = s;
    return s;
  }

  // Debug-only guard for the ownership contract above: Checkpoint() must
  // never run on two threads concurrently. Sequential hand-off between
  // threads (create on A, run the op on B, merge back on A) is legal, so
  // the check is entry/exit marking, not a pinned owner thread.
#ifndef NDEBUG
  void AssertSingleThreaded() {
    PEBBLETC_CHECK(!in_checkpoint_.exchange(true, std::memory_order_acquire))
        << "TaOpContext checkpointed from two threads concurrently; "
           "parallel workers must run on Fork() children (docs/PARALLEL.md)";
    in_checkpoint_.store(false, std::memory_order_release);
  }
  std::atomic<bool> in_checkpoint_{false};
#else
  void AssertSingleThreaded() {}
#endif

  bool interrupted_ = false;
  Status interrupt_;
  friend class TaOpTimer;
  uint32_t timer_depth_ = 0;
};

/// Null-safe accessors: operations accept `TaOpContext* ctx = nullptr` and
/// fall back to default budgets / discard counters when absent.
inline size_t TaBudgetMaxDetStates(const TaOpContext* ctx) {
  return ctx != nullptr ? ctx->budgets.max_det_states
                        : TaOpBudgets{}.max_det_states;
}
inline size_t TaBudgetMaxAntichainPairs(const TaOpContext* ctx) {
  return ctx != nullptr ? ctx->budgets.max_antichain_pairs
                        : TaOpBudgets{}.max_antichain_pairs;
}

inline void TaCountStates(TaOpContext* ctx, size_t n) {
  if (ctx != nullptr) ctx->counters.states_materialized += n;
}
inline void TaCountRules(TaOpContext* ctx, size_t n) {
  if (ctx != nullptr) ctx->counters.rules_scanned += n;
}

/// Null-safe checkpoint: the call every long-running loop makes. OK when no
/// context is threaded.
inline Status TaCheckpoint(TaOpContext* ctx) {
  return ctx != nullptr ? ctx->Checkpoint() : Status::OK();
}

/// Null-safe sticky-interrupt read, for callers of value-returning
/// operations (IntersectNbta, TrimNbta, WitnessTree, ...) that drain early
/// instead of returning a Status. A non-OK value means the preceding results
/// may be partial; positive conclusions must not be drawn from them.
inline Status TaInterruptStatus(const TaOpContext* ctx) {
  return ctx != nullptr ? ctx->interrupt() : Status::OK();
}

/// RAII wall-clock scope: adds its lifetime to `counters.op_nanos`. Nested
/// scopes on the same context are tracked by depth so only the outermost
/// scope accumulates — nested timed ops no longer double-count wall time.
class TaOpTimer {
 public:
  explicit TaOpTimer(TaOpContext* ctx) : ctx_(ctx) {
    if (ctx_ == nullptr) return;
    outermost_ = (ctx_->timer_depth_++ == 0);
    if (outermost_) start_ = std::chrono::steady_clock::now();
  }
  ~TaOpTimer() {
    if (ctx_ == nullptr) return;
    --ctx_->timer_depth_;
    if (!outermost_) return;
    auto end = std::chrono::steady_clock::now();
    ctx_->counters.op_nanos +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
            .count();
  }
  TaOpTimer(const TaOpTimer&) = delete;
  TaOpTimer& operator=(const TaOpTimer&) = delete;

 private:
  TaOpContext* ctx_;
  bool outermost_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pebbletc

#endif  // PEBBLETC_TA_OP_CONTEXT_H_
