// Unified budget + metrics context for tree-automaton operations.
//
// Every potentially expensive automaton operation (determinization, subset
// constructions, products, trims, behavior composition) historically took its
// own loose `max_states`-style parameter and reported nothing back. A
// TaOpContext bundles all budgets in one place and accumulates counters as
// the operation pipeline runs, so a whole typechecking run (Theorem 4.4's
// three passes, dozens of chained automaton ops) shares one accounting
// surface: how many states were materialized, how many rules scanned, how
// many determinizations ran, and how much wall time the automaton layer
// consumed. TypecheckResult surfaces the counters to callers.
//
// Threading convention: operations take `TaOpContext*` (nullptr = default
// budgets, no accounting). Budgets of 0 mean "unlimited". The context is not
// thread-safe; use one per pipeline run.

#ifndef PEBBLETC_TA_OP_CONTEXT_H_
#define PEBBLETC_TA_OP_CONTEXT_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace pebbletc {

/// All resource budgets consumed by the automaton layer. 0 = unlimited.
struct TaOpBudgets {
  /// States per determinization / subset construction (complement,
  /// inclusion, equivalence all determinize internally).
  size_t max_det_states = 200000;
  /// Per-tree configuration space for the Prop. 3.8 output automaton.
  size_t max_configs = 1u << 20;
  /// Subset budget for the downward fast path's lazy construction.
  size_t fastpath_max_states = 100000;
  /// 1-pebble behavior composition: refuse automata beyond this many state
  /// bits (tables are 2^bits entries), and this many distinct behaviors.
  uint32_t behavior_max_state_bits = 12;
  size_t behavior_max_behaviors = 4096;
};

/// Counters accumulated across every operation run under one context.
struct TaOpCounters {
  /// States created across all result automata (determinization subsets,
  /// product pairs, trim survivors, ...).
  size_t states_materialized = 0;
  /// Transition rules visited while running operations (a proxy for work
  /// done; index construction counts each rule once).
  size_t rules_scanned = 0;
  /// Completed determinizations / subset constructions.
  size_t determinizations = 0;
  /// Complementations (each implies a determinization).
  size_t complementations = 0;
  /// Product constructions (intersections and transducer products).
  size_t intersections = 0;
  /// TrimNbta runs.
  size_t trims = 0;
  /// MinimizeDbta runs.
  size_t minimizations = 0;
  /// NbtaIndex instances compiled.
  size_t indexes_built = 0;
  /// Total wall time spent inside timed automaton operations.
  uint64_t op_nanos = 0;
};

/// Budgets + counters, threaded as a single pointer through the pipeline.
class TaOpContext {
 public:
  TaOpContext() = default;
  explicit TaOpContext(const TaOpBudgets& budgets) : budgets(budgets) {}

  TaOpBudgets budgets;
  TaOpCounters counters;

  /// Budget check helper: OK while `n <= budget` or budget is 0.
  static Status CheckBudget(size_t n, size_t budget, const char* what) {
    if (budget != 0 && n > budget) {
      return Status::ResourceExhausted(std::string(what) + " exceeded budget of " +
                                       std::to_string(budget) + " (needed " +
                                       std::to_string(n) + ")");
    }
    return Status::OK();
  }
};

/// Null-safe accessors: operations accept `TaOpContext* ctx = nullptr` and
/// fall back to default budgets / discard counters when absent.
inline size_t TaBudgetMaxDetStates(const TaOpContext* ctx) {
  return ctx != nullptr ? ctx->budgets.max_det_states
                        : TaOpBudgets{}.max_det_states;
}

inline void TaCountStates(TaOpContext* ctx, size_t n) {
  if (ctx != nullptr) ctx->counters.states_materialized += n;
}
inline void TaCountRules(TaOpContext* ctx, size_t n) {
  if (ctx != nullptr) ctx->counters.rules_scanned += n;
}

/// RAII wall-clock scope: adds its lifetime to `counters.op_nanos`.
class TaOpTimer {
 public:
  explicit TaOpTimer(TaOpContext* ctx)
      : ctx_(ctx),
        start_(ctx != nullptr ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{}) {}
  ~TaOpTimer() {
    if (ctx_ == nullptr) return;
    auto end = std::chrono::steady_clock::now();
    ctx_->counters.op_nanos +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
            .count();
  }
  TaOpTimer(const TaOpTimer&) = delete;
  TaOpTimer& operator=(const TaOpTimer&) = delete;

 private:
  TaOpContext* ctx_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pebbletc

#endif  // PEBBLETC_TA_OP_CONTEXT_H_
