// Conversions between top-down (Def. 2.1) and bottom-up tree automata.
// The two formalisms are expressively equivalent (Section 2.3); these
// conversions are exact (no language change) and size-linear. The optional
// TaOpContext accrues the conversion cost (states materialized, rules
// scanned) into the unified pipeline counters.

#ifndef PEBBLETC_TA_CONVERT_H_
#define PEBBLETC_TA_CONVERT_H_

#include "src/ta/nbta.h"
#include "src/ta/op_context.h"
#include "src/ta/topdown.h"

namespace pebbletc {

/// Reverses the transition arrows: inst(result) = inst(a). Silent
/// transitions are eliminated first (Section 2.3 construction).
Nbta TopDownToNbta(const TopDownTA& a, TaOpContext* ctx = nullptr);

/// Reverses back. If `a` has several accepting states a fresh start state is
/// introduced that mirrors their rules.
TopDownTA NbtaToTopDown(const Nbta& a, TaOpContext* ctx = nullptr);

}  // namespace pebbletc

#endif  // PEBBLETC_TA_CONVERT_H_
