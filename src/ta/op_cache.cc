#include "src/ta/op_cache.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "src/ta/nbta_index.h"
#include "src/ta/serialize.h"

namespace pebbletc {

namespace {

// splitmix64 finalizer: the repo's standard bit mixer (MixSeed, HashPairKey).
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline uint64_t MixPair(uint64_t a, uint64_t b) { return Mix64(a ^ Mix64(b)); }

// Order-sensitive accumulation of a word stream into one 64-bit value; run
// with two different seeds for the two fingerprint halves.
inline uint64_t Chain(uint64_t acc, uint64_t v) {
  return (acc ^ Mix64(v)) * 1099511628211ull;
}

size_t CountDistinct(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return static_cast<size_t>(std::unique(v.begin(), v.end()) - v.begin());
}

TaStructuralHash FinishHash(const std::vector<uint64_t>& words) {
  uint64_t lo = 1469598103934665603ull;
  uint64_t hi = 0x8e4c6fcc2c1e8f3dull;
  for (uint64_t w : words) {
    lo = Chain(lo, w);
    hi = Chain(hi, w ^ 0x5bd1e9955bd1e995ull);
  }
  return {lo, hi};
}

}  // namespace

TaStructuralHash NbtaStructuralHash(const Nbta& input) {
  // Canonicalize: drop dead states, then work on deduplicated rule *sets* —
  // the parallel product may emit schedule-dependent rule multiplicities and
  // orders for one language, and neither may split cache entries.
  const Nbta a = TrimNbta(input);
  std::vector<Nbta::LeafRule> leaf(a.leaf_rules);
  std::sort(leaf.begin(), leaf.end(), [](const auto& x, const auto& y) {
    return std::pair(x.symbol, x.to) < std::pair(y.symbol, y.to);
  });
  leaf.erase(std::unique(leaf.begin(), leaf.end(),
                         [](const auto& x, const auto& y) {
                           return x.symbol == y.symbol && x.to == y.to;
                         }),
             leaf.end());
  std::vector<Nbta::BinaryRule> rules(a.rules);
  auto rule_tuple = [](const Nbta::BinaryRule& r) {
    return std::tuple(r.symbol, r.left, r.right, r.to);
  };
  std::sort(rules.begin(), rules.end(), [&](const auto& x, const auto& y) {
    return rule_tuple(x) < rule_tuple(y);
  });
  rules.erase(std::unique(rules.begin(), rules.end(),
                          [&](const auto& x, const auto& y) {
                            return rule_tuple(x) == rule_tuple(y);
                          }),
              rules.end());

  // Refinement coloring (Weisfeiler–Leman over the rule hypergraph): a
  // state's next color mixes its own color with the commutative sum of the
  // color signatures of every rule it participates in, per role. The
  // partition only refines round over round, so an unchanged distinct-color
  // count means it is stable.
  const uint32_t n = a.num_states;
  std::vector<uint64_t> color(n), next(n);
  for (uint32_t q = 0; q < n; ++q) {
    color[q] = Mix64(a.accepting[q] ? 0xACCE97ull : 0x2E7EC7ull);
  }
  size_t distinct = CountDistinct(color);
  for (uint32_t round = 0; round < n; ++round) {
    for (uint32_t q = 0; q < n; ++q) next[q] = Mix64(color[q]);
    for (const Nbta::LeafRule& r : leaf) {
      next[r.to] += MixPair(0xA1, r.symbol);
    }
    for (const Nbta::BinaryRule& r : rules) {
      const uint64_t cl = color[r.left], cr = color[r.right],
                     ct = color[r.to];
      next[r.to] += Mix64(0xB1 ^ MixPair(MixPair(r.symbol, cl), cr));
      next[r.left] += Mix64(0xB2 ^ MixPair(MixPair(r.symbol, cr), ct));
      next[r.right] += Mix64(0xB3 ^ MixPair(MixPair(r.symbol, cl), ct));
    }
    color.swap(next);
    const size_t d = CountDistinct(color);
    if (d == distinct) break;
    distinct = d;
  }

  // Combine as sorted multisets so state numbering and rule order are
  // irrelevant: shape header, per-state final colors, accepting colors, and
  // per-rule color signatures.
  std::vector<uint64_t> words;
  words.reserve(2 * n + leaf.size() + rules.size() + 8);
  words.push_back(0x7067636d656d6f31ull);  // format tag
  words.push_back(n);
  words.push_back(a.num_symbols);
  words.push_back(leaf.size());
  words.push_back(rules.size());
  std::vector<uint64_t> sorted;
  sorted.assign(color.begin(), color.end());
  std::sort(sorted.begin(), sorted.end());
  words.insert(words.end(), sorted.begin(), sorted.end());
  sorted.clear();
  for (uint32_t q = 0; q < n; ++q) {
    if (a.accepting[q]) sorted.push_back(color[q]);
  }
  std::sort(sorted.begin(), sorted.end());
  words.push_back(0xACCE7ull + sorted.size());
  words.insert(words.end(), sorted.begin(), sorted.end());
  sorted.clear();
  for (const Nbta::LeafRule& r : leaf) {
    sorted.push_back(MixPair(MixPair(0xC1, r.symbol), color[r.to]));
  }
  for (const Nbta::BinaryRule& r : rules) {
    sorted.push_back(MixPair(
        MixPair(MixPair(MixPair(0xC2, r.symbol), color[r.left]),
                color[r.right]),
        color[r.to]));
  }
  std::sort(sorted.begin(), sorted.end());
  words.insert(words.end(), sorted.begin(), sorted.end());
  return FinishHash(words);
}

TaStructuralHash DbtaStructuralHash(const Dbta& d) {
  std::string bytes;
  SerializeDbta(d, &bytes);
  uint64_t lo = 1469598103934665603ull;
  uint64_t hi = 0x8e4c6fcc2c1e8f3dull;
  for (char c : bytes) {
    const auto b = static_cast<unsigned char>(c);
    lo = (lo ^ b) * 1099511628211ull;
    hi = Chain(hi, b);
  }
  return {lo, hi};
}

TaStructuralHash TaFingerprintHash(uint64_t fingerprint) {
  return {Mix64(fingerprint), Mix64(fingerprint ^ 0x9e3779b97f4a7c15ull)};
}

uint64_t RankedAlphabetFingerprint(const RankedAlphabet& sigma) {
  uint64_t h = Mix64(sigma.size());
  for (SymbolId s = 0; s < sigma.size(); ++s) {
    h = Chain(h, static_cast<uint64_t>(sigma.Rank(s)));
  }
  return h;
}

TaCacheKey MakeTaCacheKey(TaOpKind op, const TaStructuralHash& a,
                          const TaStructuralHash& b, uint64_t alphabet_fp,
                          uint64_t budget_cap) {
  TaCacheKey key;
  key.op = static_cast<uint64_t>(op);
  key.a = a;
  key.b = b;
  key.extra = MixPair(alphabet_fp, budget_cap);
  return key;
}

uint64_t TaMixFingerprints(uint64_t a, uint64_t b) { return MixPair(a, b); }

size_t TaOpCache::KeyHash::operator()(const TaCacheKey& k) const {
  uint64_t h = Mix64(k.op);
  h = Chain(h, k.a.lo);
  h = Chain(h, k.a.hi);
  h = Chain(h, k.b.lo);
  h = Chain(h, k.b.hi);
  h = Chain(h, k.extra);
  return static_cast<size_t>(h);
}

TaOpCache::TaOpCache(size_t capacity_bytes) : capacity_bytes_(capacity_bytes) {}

TaOpCache::~TaOpCache() {
  if (!dir_.empty()) (void)Flush();
}

TaOpCache& TaOpCache::Global() {
  static TaOpCache* cache = new TaOpCache();
  return *cache;
}

void TaOpCache::Touch(Entry& e) {
  lru_.splice(lru_.begin(), lru_, e.lru_it);
}

std::shared_ptr<const Nbta> TaOpCache::FindNbta(const TaCacheKey& key,
                                                TaOpContext* ctx) {
  std::shared_ptr<const Nbta> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end() && it->second.nbta != nullptr) {
      Touch(it->second);
      out = it->second.nbta;
    }
  }
  if (ctx != nullptr) {
    (out != nullptr ? ctx->counters.memo_hits : ctx->counters.memo_misses)++;
  }
  return out;
}

std::shared_ptr<const Dbta> TaOpCache::FindDbta(const TaCacheKey& key,
                                                TaOpContext* ctx) {
  std::shared_ptr<const Dbta> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end() && it->second.dbta != nullptr) {
      Touch(it->second);
      out = it->second.dbta;
    }
  }
  if (ctx != nullptr) {
    (out != nullptr ? ctx->counters.memo_hits : ctx->counters.memo_misses)++;
  }
  return out;
}

void TaOpCache::EvictToFitLocked(size_t incoming_bytes, TaOpContext* ctx) {
  while (!lru_.empty() && size_bytes_ + incoming_bytes > capacity_bytes_) {
    const TaCacheKey victim = lru_.back();
    auto it = map_.find(victim);
    size_bytes_ -= it->second.bytes;
    lru_.pop_back();
    map_.erase(it);
    if (ctx != nullptr) ctx->counters.memo_evictions++;
  }
}

void TaOpCache::InsertLocked(const TaCacheKey& key, Entry entry,
                             TaOpContext* ctx) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    Touch(it->second);
    return;
  }
  // An entry bigger than the whole cache would evict everything for nothing.
  if (entry.bytes > capacity_bytes_) return;
  EvictToFitLocked(entry.bytes, ctx);
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
  size_bytes_ += entry.bytes;
  if (ctx != nullptr) ctx->counters.memo_bytes += entry.bytes;
  map_.emplace(key, std::move(entry));
}

namespace {

size_t NbtaBytes(const Nbta& a) {
  return sizeof(Nbta) + a.accepting.size() / 8 +
         a.leaf_rules.size() * sizeof(Nbta::LeafRule) +
         a.rules.size() * sizeof(Nbta::BinaryRule);
}

size_t DbtaBytes(const Dbta& d) {
  return sizeof(Dbta) + d.num_states() / 8 +
         (static_cast<size_t>(d.num_symbols()) * d.num_states() *
              d.num_states() +
          d.num_symbols()) *
             sizeof(StateId);
}

void PutU32File(uint32_t v, std::string* out) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(b, 4);
}

void PutU64File(uint64_t v, std::string* out) {
  PutU32File(static_cast<uint32_t>(v & 0xffffffffu), out);
  PutU32File(static_cast<uint32_t>(v >> 32), out);
}

bool GetU32File(std::string_view bytes, size_t* pos, uint32_t* v) {
  if (bytes.size() - *pos < 4) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data() + *pos);
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) |
       (static_cast<uint32_t>(p[3]) << 24);
  *pos += 4;
  return true;
}

bool GetU64File(std::string_view bytes, size_t* pos, uint64_t* v) {
  uint32_t lo = 0, hi = 0;
  if (!GetU32File(bytes, pos, &lo) || !GetU32File(bytes, pos, &hi)) {
    return false;
  }
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

std::string HexU64(uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

constexpr uint32_t kEntryMagic = 0x4d435450u;  // "PTCM"
constexpr uint32_t kEntryVersion = 1;
constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestHeader[] = "pebbletc-memo-manifest v1";

std::string EntryFileName(const TaCacheKey& key) {
  uint64_t h = Mix64(key.op);
  h = (h ^ Mix64(key.a.lo)) * 1099511628211ull;
  h = (h ^ Mix64(key.a.hi)) * 1099511628211ull;
  h = (h ^ Mix64(key.b.lo)) * 1099511628211ull;
  h = (h ^ Mix64(key.b.hi)) * 1099511628211ull;
  h = (h ^ Mix64(key.extra)) * 1099511628211ull;
  return HexU64(h) + ".ta";
}

}  // namespace

Status TaOpCache::WriteEntryFile(const TaCacheKey& key,
                                 const Entry& entry) const {
  std::string payload;
  uint32_t kind = 0;
  if (entry.nbta != nullptr) {
    SerializeNbta(*entry.nbta, &payload);
  } else {
    kind = 1;
    SerializeDbta(*entry.dbta, &payload);
  }
  std::string file;
  PutU32File(kEntryMagic, &file);
  PutU32File(kEntryVersion, &file);
  PutU64File(key.op, &file);
  PutU64File(key.a.lo, &file);
  PutU64File(key.a.hi, &file);
  PutU64File(key.b.lo, &file);
  PutU64File(key.b.hi, &file);
  PutU64File(key.extra, &file);
  PutU32File(kind, &file);
  PutU32File(static_cast<uint32_t>(payload.size()), &file);
  PutU64File(TaPayloadChecksum(payload), &file);
  file += payload;

  const std::filesystem::path path =
      std::filesystem::path(dir_) / EntryFileName(key);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot write cache entry " + path.string());
  }
  out.write(file.data(), static_cast<std::streamsize>(file.size()));
  out.close();
  if (!out) {
    return Status::Internal("short write on cache entry " + path.string());
  }
  return Status::OK();
}

void TaOpCache::InsertNbta(const TaCacheKey& key, const Nbta& value,
                           TaOpContext* ctx) {
  Entry e;
  e.nbta = std::make_shared<const Nbta>(value);
  e.bytes = NbtaBytes(value);
  std::lock_guard<std::mutex> lock(mu_);
  InsertLocked(key, std::move(e), ctx);
  if (!dir_.empty()) {
    auto it = map_.find(key);
    if (it != map_.end()) (void)WriteEntryFile(key, it->second);
  }
}

void TaOpCache::InsertDbta(const TaCacheKey& key, const Dbta& value,
                           TaOpContext* ctx) {
  Entry e;
  e.dbta = std::make_shared<const Dbta>(value);
  e.bytes = DbtaBytes(value);
  std::lock_guard<std::mutex> lock(mu_);
  InsertLocked(key, std::move(e), ctx);
  if (!dir_.empty()) {
    auto it = map_.find(key);
    if (it != map_.end()) (void)WriteEntryFile(key, it->second);
  }
}

void TaOpCache::set_capacity_bytes(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_bytes_ = bytes;
  EvictToFitLocked(0, nullptr);
}

size_t TaOpCache::capacity_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_bytes_;
}

size_t TaOpCache::size_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_bytes_;
}

size_t TaOpCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void TaOpCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  size_bytes_ = 0;
}

Status TaOpCache::AttachPersistentDir(const std::string& dir, size_t* loaded,
                                      size_t* quarantined) {
  if (loaded != nullptr) *loaded = 0;
  if (quarantined != nullptr) *quarantined = 0;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create memo dir " + dir + ": " +
                            ec.message());
  }
  std::lock_guard<std::mutex> lock(mu_);
  dir_ = dir;

  const std::filesystem::path manifest =
      std::filesystem::path(dir) / kManifestName;
  std::ifstream in(manifest);
  if (!in) return Status::OK();  // fresh directory: nothing to load
  std::string line;
  if (!std::getline(in, line) || line != kManifestHeader) {
    return Status::ParseError("unrecognized memo manifest header in " + dir);
  }
  auto quarantine = [&](const std::filesystem::path& p) {
    std::error_code rec;
    std::filesystem::rename(p, p.string() + ".quarantined", rec);
    if (quarantined != nullptr) ++*quarantined;
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string name, checksum_hex;
    if (!(fields >> name >> checksum_hex) ||
        name.find('/') != std::string::npos || name.find("..") == 0) {
      continue;  // malformed manifest line: skip, never trust
    }
    const std::filesystem::path path = std::filesystem::path(dir) / name;
    std::ifstream entry_in(path, std::ios::binary);
    if (!entry_in) continue;  // listed but absent: already gone
    std::string bytes((std::istreambuf_iterator<char>(entry_in)),
                      std::istreambuf_iterator<char>());
    size_t pos = 0;
    uint32_t magic = 0, version = 0, kind = 0, payload_len = 0;
    TaCacheKey key;
    uint64_t stored_checksum = 0;
    const bool header_ok =
        GetU32File(bytes, &pos, &magic) && magic == kEntryMagic &&
        GetU32File(bytes, &pos, &version) && version == kEntryVersion &&
        GetU64File(bytes, &pos, &key.op) &&
        GetU64File(bytes, &pos, &key.a.lo) &&
        GetU64File(bytes, &pos, &key.a.hi) &&
        GetU64File(bytes, &pos, &key.b.lo) &&
        GetU64File(bytes, &pos, &key.b.hi) &&
        GetU64File(bytes, &pos, &key.extra) &&
        GetU32File(bytes, &pos, &kind) &&
        GetU32File(bytes, &pos, &payload_len) &&
        GetU64File(bytes, &pos, &stored_checksum);
    if (!header_ok || bytes.size() - pos != payload_len) {
      quarantine(path);
      continue;
    }
    // The filename is a hash of the key, so a bit-flip in the stored key —
    // which the payload checksum cannot see — breaks this equation and the
    // entry is never trusted under the wrong key.
    if (EntryFileName(key) != name) {
      quarantine(path);
      continue;
    }
    const std::string_view payload(bytes.data() + pos, payload_len);
    const uint64_t checksum = TaPayloadChecksum(payload);
    if (checksum != stored_checksum || HexU64(checksum) != checksum_hex) {
      quarantine(path);
      continue;
    }
    Entry e;
    if (kind == 0) {
      Result<Nbta> a = DeserializeNbta(payload);
      if (!a.ok()) {
        quarantine(path);
        continue;
      }
      e.bytes = NbtaBytes(*a);
      e.nbta = std::make_shared<const Nbta>(*std::move(a));
    } else if (kind == 1) {
      Result<Dbta> d = DeserializeDbta(payload);
      if (!d.ok()) {
        quarantine(path);
        continue;
      }
      e.bytes = DbtaBytes(*d);
      e.dbta = std::make_shared<const Dbta>(*std::move(d));
    } else {
      quarantine(path);
      continue;
    }
    const size_t before = map_.size();
    InsertLocked(key, std::move(e), nullptr);
    if (loaded != nullptr && map_.size() > before) ++*loaded;
  }
  return Status::OK();
}

Status TaOpCache::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dir_.empty()) {
    return Status::FailedPrecondition("no persistent directory attached");
  }
  std::ostringstream manifest;
  manifest << kManifestHeader << "\n";
  // Least-recent first, so a capacity-bound reload re-inserts in recency
  // order and ends with the same LRU front.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    const Entry& e = map_.at(*it);
    std::string payload;
    if (e.nbta != nullptr) {
      SerializeNbta(*e.nbta, &payload);
    } else {
      SerializeDbta(*e.dbta, &payload);
    }
    manifest << EntryFileName(*it) << " " << HexU64(TaPayloadChecksum(payload))
             << "\n";
  }
  const std::filesystem::path path =
      std::filesystem::path(dir_) / kManifestName;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot write memo manifest " + path.string());
  }
  out << manifest.str();
  out.close();
  if (!out) {
    return Status::Internal("short write on memo manifest " + path.string());
  }
  return Status::OK();
}

TaAlgebra::TaAlgebra(TaOpCache* cache)
    : cache_(cache != nullptr ? cache : &TaOpCache::Global()) {}

bool TaAlgebra::Enabled(const TaOpContext* ctx) {
  return ctx != nullptr && ctx->budgets.memo != TaMemoMode::kOff &&
         ctx->fault == nullptr;
}

Result<Dbta> TaAlgebra::Determinize(const NbtaIndex& a,
                                    const RankedAlphabet& sigma,
                                    TaOpContext* ctx) const {
  if (!Enabled(ctx)) return DeterminizeNbta(a, sigma, ctx);
  const TaCacheKey key = MakeTaCacheKey(
      TaOpKind::kDeterminize, NbtaStructuralHash(a.nbta()), TaStructuralHash{},
      RankedAlphabetFingerprint(sigma), ctx->budgets.max_det_states);
  if (std::shared_ptr<const Dbta> hit = cache_->FindDbta(key, ctx)) {
    return *hit;
  }
  Result<Dbta> r = DeterminizeNbta(a, sigma, ctx);
  if (r.ok() && TaInterruptStatus(ctx).ok()) cache_->InsertDbta(key, *r, ctx);
  return r;
}

Result<std::shared_ptr<const Dbta>> TaAlgebra::MembershipTable(
    const NbtaIndex& a, const RankedAlphabet& sigma, TaOpContext* ctx) const {
  if (!Enabled(ctx)) {
    PEBBLETC_ASSIGN_OR_RETURN(Dbta d, DeterminizeNbta(a, sigma, ctx));
    return std::make_shared<const Dbta>(std::move(d));
  }
  const TaCacheKey key = MakeTaCacheKey(
      TaOpKind::kCompiledMembership, NbtaStructuralHash(a.nbta()),
      TaStructuralHash{}, RankedAlphabetFingerprint(sigma),
      ctx->budgets.max_det_states);
  if (std::shared_ptr<const Dbta> hit = cache_->FindDbta(key, ctx)) {
    return hit;
  }
  PEBBLETC_ASSIGN_OR_RETURN(Dbta d, DeterminizeNbta(a, sigma, ctx));
  auto table = std::make_shared<const Dbta>(std::move(d));
  if (TaInterruptStatus(ctx).ok()) cache_->InsertDbta(key, *table, ctx);
  return table;
}

Result<Nbta> TaAlgebra::Complement(const NbtaIndex& a,
                                   const RankedAlphabet& sigma,
                                   TaOpContext* ctx) const {
  if (!Enabled(ctx)) return ComplementNbta(a, sigma, ctx);
  const TaCacheKey key = MakeTaCacheKey(
      TaOpKind::kComplement, NbtaStructuralHash(a.nbta()), TaStructuralHash{},
      RankedAlphabetFingerprint(sigma), ctx->budgets.max_det_states);
  if (std::shared_ptr<const Nbta> hit = cache_->FindNbta(key, ctx)) {
    return *hit;
  }
  Result<Nbta> r = ComplementNbta(a, sigma, ctx);
  if (r.ok() && TaInterruptStatus(ctx).ok()) cache_->InsertNbta(key, *r, ctx);
  return r;
}

Nbta TaAlgebra::Intersect(const NbtaIndex& a, const NbtaIndex& b,
                          TaOpContext* ctx) const {
  if (!Enabled(ctx)) return IntersectNbta(a, b, ctx);
  // Operand order is kept in the key: swapping operands yields a renamed
  // (language-equal but not replay-exact) product.
  const TaCacheKey key = MakeTaCacheKey(
      TaOpKind::kIntersect, NbtaStructuralHash(a.nbta()),
      NbtaStructuralHash(b.nbta()), /*alphabet_fp=*/0, /*budget_cap=*/0);
  if (std::shared_ptr<const Nbta> hit = cache_->FindNbta(key, ctx)) {
    return *hit;
  }
  Nbta r = IntersectNbta(a, b, ctx);
  if (TaInterruptStatus(ctx).ok()) cache_->InsertNbta(key, r, ctx);
  return r;
}

Result<NbtaInclusionResult> TaAlgebra::IncludedIn(const NbtaIndex& a,
                                                  const NbtaIndex& b,
                                                  const RankedAlphabet& sigma,
                                                  TaOpContext* ctx) const {
  if (!Enabled(ctx)) return NbtaIncludedIn(a, b, sigma, ctx);
  // Operand order is semantic (A ⊆ B vs B ⊆ A), so both hashes enter the
  // key in place.
  const TaCacheKey key = MakeTaCacheKey(
      TaOpKind::kIncludedIn, NbtaStructuralHash(a.nbta()),
      NbtaStructuralHash(b.nbta()), RankedAlphabetFingerprint(sigma),
      ctx->budgets.max_antichain_pairs);
  if (std::shared_ptr<const Nbta> hit = cache_->FindNbta(key, ctx)) {
    // Decode the verdict automaton: empty language ⇔ included; otherwise
    // its unique tree is the counterexample.
    NbtaIndex hit_idx(*hit, ctx);
    if (IsEmptyNbta(hit_idx, ctx)) {
      PEBBLETC_RETURN_IF_ERROR(TaInterruptStatus(ctx));
      return NbtaInclusionResult{true, std::nullopt};
    }
    std::optional<BinaryTree> witness = WitnessTree(hit_idx, ctx);
    PEBBLETC_RETURN_IF_ERROR(TaInterruptStatus(ctx));
    PEBBLETC_CHECK(witness.has_value()) << "non-empty verdict automaton";
    return NbtaInclusionResult{false, std::move(witness)};
  }
  Result<NbtaInclusionResult> r = NbtaIncludedIn(a, b, sigma, ctx);
  if (r.ok() && TaInterruptStatus(ctx).ok()) {
    const Nbta verdict =
        r->included
            ? EmptyLanguageNbta(sigma)
            : SingletonTreeNbta(*r->counterexample, a.num_symbols());
    cache_->InsertNbta(key, verdict, ctx);
  }
  return r;
}

Result<Dbta> TaAlgebra::Minimize(const Dbta& d, const RankedAlphabet& sigma,
                                 TaOpContext* ctx) const {
  if (!Enabled(ctx)) return MinimizeDbta(d, sigma, ctx);
  // No state budget applies to minimization, so no cap enters the key.
  const TaCacheKey key = MakeTaCacheKey(
      TaOpKind::kMinimize, DbtaStructuralHash(d), TaStructuralHash{},
      RankedAlphabetFingerprint(sigma), /*budget_cap=*/0);
  if (std::shared_ptr<const Dbta> hit = cache_->FindDbta(key, ctx)) {
    return *hit;
  }
  Result<Dbta> r = MinimizeDbta(d, sigma, ctx);
  if (r.ok() && TaInterruptStatus(ctx).ok()) cache_->InsertDbta(key, *r, ctx);
  return r;
}

}  // namespace pebbletc
