// Binary (de)serialization for tree automata — the persistence substrate of
// the content-addressed op cache (docs/CACHING.md) and the `--memo_dir`
// cross-process artifact store.
//
// The layout (docs/FORMATS.md, "Binary automaton format") is a flat
// little-endian dump of the in-memory representation: fixed-width u32 fields,
// bit-packed accepting sets, rules in storage order. Deserialization
// validates every structural invariant (state/symbol ranges, section sizes)
// so a truncated or bit-flipped file fails with kParseError instead of
// yielding an out-of-range automaton; the cache layer additionally verifies
// an FNV-1a checksum over the payload before trusting a loaded entry.

#ifndef PEBBLETC_TA_SERIALIZE_H_
#define PEBBLETC_TA_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/ta/nbta.h"

namespace pebbletc {

/// Appends the binary encoding of `a` to `*out`.
void SerializeNbta(const Nbta& a, std::string* out);

/// Appends the binary encoding of `d` to `*out`.
void SerializeDbta(const Dbta& d, std::string* out);

/// Parses an automaton serialized by SerializeNbta. The whole string must be
/// consumed; trailing bytes, truncation, or out-of-range ids are kParseError.
Result<Nbta> DeserializeNbta(std::string_view bytes);

/// Parses an automaton serialized by SerializeDbta (same contract).
Result<Dbta> DeserializeDbta(std::string_view bytes);

/// FNV-1a 64 over `bytes` — the checksum stored alongside persisted cache
/// entries and re-verified on load.
uint64_t TaPayloadChecksum(std::string_view bytes);

}  // namespace pebbletc

#endif  // PEBBLETC_TA_SERIALIZE_H_
