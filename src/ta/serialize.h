// Binary (de)serialization for tree automata, transducers, and DTDs — the
// persistence substrate of the content-addressed op cache (docs/CACHING.md),
// the `--memo_dir` cross-process artifact store, and the typecheck service's
// artifact registry (docs/SERVING.md).
//
// The layouts (docs/FORMATS.md, "Binary formats") are flat little-endian
// dumps of the in-memory representations: fixed-width u32 fields, bit-packed
// accepting sets, rules in storage order, length-prefixed names. Every
// deserializer validates every structural invariant (state/symbol ranges,
// section sizes, level discipline, regex arity/depth) so a truncated or
// bit-flipped input fails with kParseError instead of yielding an
// out-of-range structure — these functions sit on the service's trust
// boundary, where the bytes may be adversarial, not just stale.
//
// Self-contained *artifacts* (a transducer with its alphabets, a DTD, a
// schema automaton with its alphabet) additionally travel inside a versioned
// container with a magic number, a kind byte, and an FNV-1a payload checksum
// (WrapTaArtifact / UnwrapTaArtifact), so registries and wire peers can
// reject corrupted or mislabelled payloads before parsing a single field.

#ifndef PEBBLETC_TA_SERIALIZE_H_
#define PEBBLETC_TA_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/dtd/dtd.h"
#include "src/pt/transducer.h"
#include "src/ta/nbta.h"

namespace pebbletc {

/// Appends the binary encoding of `a` to `*out`.
void SerializeNbta(const Nbta& a, std::string* out);

/// Appends the binary encoding of `d` to `*out`.
void SerializeDbta(const Dbta& d, std::string* out);

/// Parses an automaton serialized by SerializeNbta. The whole string must be
/// consumed; trailing bytes, truncation, or out-of-range ids are kParseError.
Result<Nbta> DeserializeNbta(std::string_view bytes);

/// Parses an automaton serialized by SerializeDbta (same contract).
Result<Dbta> DeserializeDbta(std::string_view bytes);

/// FNV-1a 64 over `bytes` — the checksum stored alongside persisted cache
/// entries and re-verified on load.
uint64_t TaPayloadChecksum(std::string_view bytes);

// ---------------------------------------------------------------------------
// Self-contained artifacts (docs/SERVING.md registry, LoadArtifact wire op).
// ---------------------------------------------------------------------------

/// Appends the binary encoding of a ranked alphabet (rank byte + name per
/// symbol, in id order, so ids survive the round trip).
void SerializeRankedAlphabet(const RankedAlphabet& alphabet, std::string* out);

/// Parses an alphabet serialized by SerializeRankedAlphabet (whole string).
Result<RankedAlphabet> DeserializeRankedAlphabet(std::string_view bytes);

/// A pebble transducer bundled with the alphabets it runs over — the unit
/// the registry stores, since a bare PebbleTransducer only knows alphabet
/// *sizes* and cannot be validated or driven without the symbol tables.
struct TransducerArtifact {
  PebbleTransducer transducer{1, 0, 0};
  RankedAlphabet input_alphabet;
  RankedAlphabet output_alphabet;
};

/// Appends the binary encoding of `artifact`.
void SerializeTransducerArtifact(const TransducerArtifact& artifact,
                                 std::string* out);

/// Parses a transducer artifact. Beyond the byte-level checks, every state
/// id, level, move kind, and guard is range-checked and the reconstructed
/// machine must pass PebbleTransducer::Validate against its alphabets; any
/// violation is kParseError (malformed artifacts never build a machine).
Result<TransducerArtifact> DeserializeTransducerArtifact(
    std::string_view bytes);

/// Appends the binary encoding of `dtd` (tag/type name tables, type→tag map,
/// root types, and content-model regex ASTs in postorder).
void SerializeDtdArtifact(const SpecializedDtd& dtd, std::string* out);

/// Parses a DTD artifact. Regex ASTs are rebuilt through the Regex factories
/// with arity, node-count, and depth caps; type/tag references are
/// range-checked; the result is Finalize()d. Any violation is kParseError.
Result<SpecializedDtd> DeserializeDtdArtifact(std::string_view bytes);

/// A compiled schema: a tree automaton bundled with its ranked alphabet.
struct SchemaArtifact {
  RankedAlphabet alphabet;
  Nbta automaton;
};

/// Appends the binary encoding of `artifact`.
void SerializeSchemaArtifact(const SchemaArtifact& artifact, std::string* out);

/// Parses a schema artifact; the automaton must pass Nbta::Validate against
/// the bundled alphabet (rank discipline included). Violations → kParseError.
Result<SchemaArtifact> DeserializeSchemaArtifact(std::string_view bytes);

/// What a wrapped artifact contains. Wire-stable values — do not renumber.
enum class TaArtifactKind : uint8_t {
  kNbta = 0,
  kDbta = 1,
  kTransducer = 2,
  kDtd = 3,
  kSchema = 4,
};

/// Container format version written by WrapTaArtifact.
inline constexpr uint8_t kTaArtifactVersion = 1;

/// Wraps `payload` in the versioned artifact container: magic "PTAR",
/// version byte, kind byte, FNV-1a payload checksum, payload.
void WrapTaArtifact(TaArtifactKind kind, std::string_view payload,
                    std::string* out);

/// A parsed container header; `payload` views into the unwrapped bytes.
struct TaArtifactView {
  TaArtifactKind kind;
  std::string_view payload;
};

/// Validates the container framing (magic, version, known kind, checksum)
/// and returns the kind plus a view of the payload. kParseError on any
/// mismatch — the payload is not inspected.
Result<TaArtifactView> UnwrapTaArtifact(std::string_view bytes);

}  // namespace pebbletc

#endif  // PEBBLETC_TA_SERIALIZE_H_
