#include "src/ta/topdown.h"

#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/graph/agap.h"

namespace pebbletc {

Status TopDownTA::Validate(const RankedAlphabet& alphabet) const {
  if (num_symbols != alphabet.size()) {
    return Status::InvalidArgument("num_symbols does not match the alphabet");
  }
  if (start >= num_states) {
    return Status::InvalidArgument("start state out of range");
  }
  for (const FinalPair& f : final_pairs) {
    if (f.state >= num_states || f.symbol >= num_symbols) {
      return Status::InvalidArgument("final pair out of range");
    }
    if (alphabet.Rank(f.symbol) != 0) {
      return Status::InvalidArgument("final pair on binary symbol '" +
                                     alphabet.Name(f.symbol) + "'");
    }
  }
  for (const BinaryRule& r : rules) {
    if (r.from >= num_states || r.left >= num_states ||
        r.right >= num_states || r.symbol >= num_symbols) {
      return Status::InvalidArgument("binary rule out of range");
    }
    if (alphabet.Rank(r.symbol) != 2) {
      return Status::InvalidArgument("binary rule on leaf symbol '" +
                                     alphabet.Name(r.symbol) + "'");
    }
  }
  for (const SilentRule& s : silent) {
    if (s.from >= num_states || s.to >= num_states ||
        s.symbol >= num_symbols) {
      return Status::InvalidArgument("silent rule out of range");
    }
  }
  return Status::OK();
}

TopDownIndex::TopDownIndex(const TopDownTA& a) : a_(&a) {
  auto ids = [](size_t i) { return static_cast<uint32_t>(i); };
  rules_by_symbol_ = Csr<uint32_t>::Build(
      a.num_symbols, a.rules.size(),
      [&](size_t i) { return a.rules[i].symbol; }, ids);
  finals_by_symbol_ = Csr<uint32_t>::Build(
      a.num_symbols, a.final_pairs.size(),
      [&](size_t i) { return a.final_pairs[i].symbol; }, ids);
  silent_by_symbol_ = Csr<uint32_t>::Build(
      a.num_symbols, a.silent.size(),
      [&](size_t i) { return a.silent[i].symbol; }, ids);
}

std::span<const StateId> TopDownIndex::SilentSources(SymbolId symbol,
                                                     StateId to) const {
  if (!reverse_silent_built_) {
    const auto& silent = a_->silent;
    const size_t rows =
        static_cast<size_t>(a_->num_symbols) * a_->num_states;
    reverse_silent_ = Csr<StateId>::Build(
        rows, silent.size(),
        [&](size_t i) {
          return static_cast<size_t>(silent[i].symbol) * a_->num_states +
                 silent[i].to;
        },
        [&](size_t i) { return silent[i].from; });
    reverse_silent_built_ = true;
  }
  return reverse_silent_.Row(static_cast<size_t>(symbol) * a_->num_states +
                             to);
}

TopDownTA EliminateSilentTransitions(const TopDownIndex& idx,
                                     TaOpContext* ctx) {
  TaOpTimer timer(ctx);
  const TopDownTA& a = idx.ta();
  TopDownTA out;
  out.num_states = a.num_states;
  out.num_symbols = a.num_symbols;
  out.start = a.start;
  if (a.silent.empty()) {
    out.final_pairs = a.final_pairs;
    out.rules = a.rules;
    return out;
  }

  // For a rule (a, t) → ... the eliminated automaton needs it at every state
  // q with q ⇒*_a t, i.e. every q that reaches t backwards through symbol-a
  // silent edges. Compute those sets lazily, one reverse BFS per distinct
  // (symbol, target) over the compiled reverse silent adjacency, so the cost
  // is proportional to the silent-edge graph rather than cubic in the
  // (possibly large) state count.
  const uint32_t n = a.num_states;
  std::vector<std::vector<std::vector<StateId>>> memo(a.num_symbols);
  auto backward_set = [&](SymbolId s, StateId t) -> const std::vector<StateId>& {
    if (memo[s].empty()) memo[s].assign(n, {});
    std::vector<StateId>& cached = memo[s][t];
    if (!cached.empty()) return cached;
    std::vector<bool> seen(n, false);
    std::vector<StateId> work = {t};
    seen[t] = true;
    cached.push_back(t);
    while (!work.empty()) {
      StateId q = work.back();
      work.pop_back();
      for (StateId p : idx.SilentSources(s, q)) {
        if (!seen[p]) {
          seen[p] = true;
          cached.push_back(p);
          work.push_back(p);
        }
      }
    }
    return cached;
  };

  for (const TopDownTA::BinaryRule& r : a.rules) {
    // Interrupted: emit no further rules. Every rule already emitted is
    // sound; callers consult TaInterruptStatus before trusting completeness.
    if (!TaCheckpoint(ctx).ok()) break;
    for (StateId q : backward_set(r.symbol, r.from)) {
      out.AddRule(r.symbol, q, r.left, r.right);
    }
  }
  for (const TopDownTA::FinalPair& f : a.final_pairs) {
    if (!TaCheckpoint(ctx).ok()) break;
    for (StateId q : backward_set(f.symbol, f.state)) {
      out.AddFinalPair(f.symbol, q);
    }
  }
  TaCountRules(ctx, out.rules.size() + out.final_pairs.size());
  return out;
}

TopDownTA EliminateSilentTransitions(const TopDownTA& a, TaOpContext* ctx) {
  // Fast path: nothing to eliminate, skip index construction entirely.
  if (a.silent.empty()) {
    TopDownTA out;
    out.num_states = a.num_states;
    out.num_symbols = a.num_symbols;
    out.start = a.start;
    out.final_pairs = a.final_pairs;
    out.rules = a.rules;
    return out;
  }
  return EliminateSilentTransitions(TopDownIndex(a), ctx);
}

bool TopDownAccepts(const TopDownIndex& idx, const BinaryTree& tree) {
  const TopDownTA& a = idx.ta();
  if (tree.empty()) return false;
  // Or-node per configuration [q, x]; one extra and-node per applicable
  // binary rule instance; branchless accept via final pairs (edge to the
  // empty and-node).
  AlternatingGraph g;
  const size_t num_nodes = tree.size();
  // Config ids are laid out first so indices are predictable.
  for (size_t i = 0; i < static_cast<size_t>(a.num_states) * num_nodes; ++i) {
    g.AddNode(AlternatingGraph::NodeType::kOr);
  }
  AgapNodeId accept = g.AddNode(AlternatingGraph::NodeType::kAnd);
  auto config = [&](StateId q, NodeId x) -> AgapNodeId {
    return static_cast<AgapNodeId>(static_cast<size_t>(q) * num_nodes + x);
  };

  for (NodeId x = 0; x < num_nodes; ++x) {
    const SymbolId sym = tree.symbol(x);
    for (uint32_t si : idx.SilentWithSymbol(sym)) {
      const TopDownTA::SilentRule& r = a.silent[si];
      g.AddEdge(config(r.from, x), config(r.to, x));
    }
    if (tree.IsLeaf(x)) {
      for (uint32_t fi : idx.FinalsWithSymbol(sym)) {
        g.AddEdge(config(a.final_pairs[fi].state, x), accept);
      }
    } else {
      for (uint32_t ri : idx.RulesWithSymbol(sym)) {
        const TopDownTA::BinaryRule& r = a.rules[ri];
        AgapNodeId pair = g.AddNode(AlternatingGraph::NodeType::kAnd);
        g.AddEdge(config(r.from, x), pair);
        g.AddEdge(pair, config(r.left, tree.left(x)));
        g.AddEdge(pair, config(r.right, tree.right(x)));
      }
    }
  }
  std::vector<bool> accessible = g.ComputeAccessible();
  return accessible[config(a.start, tree.root())];
}

bool TopDownAccepts(const TopDownTA& a, const BinaryTree& tree) {
  return TopDownAccepts(TopDownIndex(a), tree);
}

}  // namespace pebbletc
