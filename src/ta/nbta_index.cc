#include "src/ta/nbta_index.h"

#include "src/common/check.h"

namespace pebbletc {

NbtaIndex::NbtaIndex(const Nbta& a, TaOpContext* ctx) : a_(&a) {
  TaOpTimer timer(ctx);
  const auto& leaf = a.leaf_rules;
  const auto& bin = a.rules;
  auto ids = [](size_t i) { return static_cast<uint32_t>(i); };

  leaf_by_symbol_ = Csr<StateId>::Build(
      a.num_symbols, leaf.size(), [&](size_t i) { return leaf[i].symbol; },
      [&](size_t i) { return leaf[i].to; });
  leaf_by_target_ = Csr<uint32_t>::Build(
      a.num_states, leaf.size(), [&](size_t i) { return leaf[i].to; }, ids);

  by_symbol_ = Csr<uint32_t>::Build(
      a.num_symbols, bin.size(), [&](size_t i) { return bin[i].symbol; }, ids);
  by_left_ = Csr<uint32_t>::Build(
      a.num_states, bin.size(), [&](size_t i) { return bin[i].left; }, ids);
  by_right_ = Csr<uint32_t>::Build(
      a.num_states, bin.size(), [&](size_t i) { return bin[i].right; }, ids);
  by_target_ = Csr<uint32_t>::Build(
      a.num_states, bin.size(), [&](size_t i) { return bin[i].to; }, ids);

  for (StateId q = 0; q < a.num_states; ++q) {
    if (a.accepting[q]) accepting_states_.push_back(q);
  }

  if (ctx != nullptr) {
    ctx->counters.indexes_built++;
    ctx->counters.rules_scanned += leaf.size() + bin.size();
  }
}

std::span<const NbtaIndex::RightTo> NbtaIndex::SymbolLeft(SymbolId symbol,
                                                          StateId left) const {
  if (!symbol_left_built_) {
    const auto& bin = a_->rules;
    const size_t rows = static_cast<size_t>(a_->num_symbols) * a_->num_states;
    symbol_left_ = Csr<RightTo>::Build(
        rows, bin.size(),
        [&](size_t i) {
          return static_cast<size_t>(bin[i].symbol) * a_->num_states +
                 bin[i].left;
        },
        [&](size_t i) { return RightTo{bin[i].right, bin[i].to}; });
    symbol_left_built_ = true;
  }
  return symbol_left_.Row(static_cast<size_t>(symbol) * a_->num_states + left);
}

std::span<const uint32_t> NbtaIndex::SuccessorMasks(SymbolId symbol) const {
  PEBBLETC_CHECK(DenseMasksApplicable())
      << "SuccessorMasks on an automaton with more than "
      << kDenseMaskMaxStates << " states";
  const size_t n = a_->num_states;
  const size_t per_symbol = n * n;
  if (!dense_masks_built_) {
    dense_masks_.assign(static_cast<size_t>(a_->num_symbols) * per_symbol, 0);
    for (const Nbta::BinaryRule& r : a_->rules) {
      dense_masks_[static_cast<size_t>(r.symbol) * per_symbol +
                   static_cast<size_t>(r.left) * n + r.right] |= 1u << r.to;
    }
    dense_masks_built_ = true;
  }
  return std::span<const uint32_t>(
      dense_masks_.data() + static_cast<size_t>(symbol) * per_symbol,
      per_symbol);
}

}  // namespace pebbletc
