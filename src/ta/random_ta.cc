#include "src/ta/random_ta.h"

namespace pebbletc {

Nbta RandomNbta(const RankedAlphabet& alphabet, Rng& rng,
                const RandomNbtaOptions& options) {
  PEBBLETC_CHECK(options.num_states > 0) << "need at least one state";
  PEBBLETC_CHECK(!alphabet.LeafSymbols().empty()) << "no leaf symbols";
  Nbta out;
  out.num_symbols = static_cast<uint32_t>(alphabet.size());
  for (uint32_t q = 0; q < options.num_states; ++q) out.AddState();

  for (SymbolId a : alphabet.LeafSymbols()) {
    for (StateId q = 0; q < out.num_states; ++q) {
      if (rng.NextBool(options.leaf_density)) out.AddLeafRule(a, q);
    }
  }
  if (out.leaf_rules.empty()) {
    out.AddLeafRule(alphabet.LeafSymbols()[0],
                    static_cast<StateId>(rng.NextBelow(out.num_states)));
  }

  for (SymbolId a : alphabet.BinarySymbols()) {
    for (StateId l = 0; l < out.num_states; ++l) {
      for (StateId r = 0; r < out.num_states; ++r) {
        for (StateId to = 0; to < out.num_states; ++to) {
          if (rng.NextBool(options.rule_density / out.num_states)) {
            out.AddRule(a, l, r, to);
          }
        }
      }
    }
  }

  bool any_accepting = false;
  for (StateId q = 0; q < out.num_states; ++q) {
    out.accepting[q] = rng.NextBool(options.accepting_density);
    any_accepting = any_accepting || out.accepting[q];
  }
  if (!any_accepting) {
    out.accepting[rng.NextBelow(out.num_states)] = true;
  }
  return out;
}

}  // namespace pebbletc
