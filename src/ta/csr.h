// Compressed-sparse-row storage for compiled rule indexes: a flat value
// array plus per-row offsets, built with a two-pass counting sort. Immutable
// after Build; O(rows + items) construction, zero per-row allocations.

#ifndef PEBBLETC_TA_CSR_H_
#define PEBBLETC_TA_CSR_H_

#include <cstdint>
#include <span>
#include <vector>

namespace pebbletc {

template <typename T>
struct Csr {
  std::vector<uint32_t> offsets;  // size num_rows + 1
  std::vector<T> values;

  std::span<const T> Row(size_t r) const {
    return std::span<const T>(values.data() + offsets[r],
                              offsets[r + 1] - offsets[r]);
  }

  /// `key(i)` gives item i's row, `val(i)` its stored value.
  template <typename KeyFn, typename ValFn>
  static Csr Build(size_t num_rows, size_t num_items, KeyFn key, ValFn val) {
    Csr csr;
    csr.offsets.assign(num_rows + 1, 0);
    for (size_t i = 0; i < num_items; ++i) ++csr.offsets[key(i) + 1];
    for (size_t r = 0; r < num_rows; ++r) {
      csr.offsets[r + 1] += csr.offsets[r];
    }
    csr.values.resize(num_items);
    std::vector<uint32_t> cursor(csr.offsets.begin(), csr.offsets.end() - 1);
    for (size_t i = 0; i < num_items; ++i) {
      csr.values[cursor[key(i)]++] = val(i);
    }
    return csr;
  }
};

}  // namespace pebbletc

#endif  // PEBBLETC_TA_CSR_H_
