#include "src/ta/inclusion.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/ta/nbta_index.h"

namespace pebbletc {
namespace {

constexpr uint32_t kNoPair = static_cast<uint32_t>(-1);

// An interned B-state set: sorted elements for subsumption tests and a
// bitset for O(1) membership during Post computation. `has_accepting` caches
// S ∩ F_B ≠ ∅ (the only property the acceptance test needs).
struct SetData {
  std::vector<StateId> elems;  // sorted, unique
  std::vector<bool> bits;
  bool has_accepting = false;
};

struct VecHash {
  size_t operator()(const std::vector<StateId>& v) const {
    uint64_t h = 0xcbf29ce484222325ull;
    for (StateId q : v) {
      h ^= q;
      h *= 0x100000001b3ull;
    }
    return static_cast<size_t>(h);
  }
};

// A search pair (q, S) plus the provenance needed to replay its witness
// tree: a leaf symbol, or a binary symbol with two earlier pair ids. Arena
// entries are never removed (dominated pairs are only marked dead), so
// provenance chains of surviving pairs stay valid.
struct Pair {
  StateId q = 0;
  uint32_t set = 0;
  SymbolId symbol = 0;
  uint32_t left = kNoPair;
  uint32_t right = kNoPair;
  bool dead = false;
};

// s1 ⊆ s2 over sorted unique vectors.
bool SubsetOf(const std::vector<StateId>& s1, const std::vector<StateId>& s2) {
  if (s1.size() > s2.size()) return false;
  size_t j = 0;
  for (StateId q : s1) {
    while (j < s2.size() && s2[j] < q) ++j;
    if (j == s2.size() || s2[j] != q) return false;
    ++j;
  }
  return true;
}

class AntichainSearch {
 public:
  AntichainSearch(const NbtaIndex& a, const NbtaIndex& b,
                  const RankedAlphabet& alphabet, TaOpContext* ctx)
      : a_(a),
        b_(b),
        alphabet_(alphabet),
        ctx_(ctx),
        max_pairs_(TaBudgetMaxAntichainPairs(ctx)),
        kept_(a.num_states()),
        b_seen_(b.num_states(), false) {}

  Result<NbtaInclusionResult> Run() {
    PEBBLETC_RETURN_IF_ERROR(SeedLeaves());
    if (done_) return std::move(result_);
    std::vector<StateId> a_succs;
    while (head_ < worklist_.size()) {
      const uint32_t p = worklist_[head_++];
      if (pairs_[p].dead) continue;
      PEBBLETC_RETURN_IF_ERROR(TaCheckpoint(ctx_));
      processed_.push_back(p);
      // Combine p with every processed live pair (itself included), in both
      // child orders, under every binary symbol. The A-successor probe is
      // cheap (one SymbolLeft row scan), so it gates the Post_B computation.
      for (size_t i = 0; i < processed_.size(); ++i) {
        const uint32_t r = processed_[i];
        if (pairs_[r].dead) continue;
        PEBBLETC_RETURN_IF_ERROR(Combine(p, r, &a_succs));
        if (done_) return std::move(result_);
        if (r != p) {
          PEBBLETC_RETURN_IF_ERROR(Combine(r, p, &a_succs));
          if (done_) return std::move(result_);
        }
      }
    }
    // Frontier drained with no refuting pair: every reachable (q, S) is
    // dominated by an explored one, and domination preserves badness, so
    // none exists — inclusion holds. A positive verdict is only
    // trustworthy on an uninterrupted context (an A with no leaf rules
    // drains without ever checkpointing, so the sticky interrupt must be
    // consulted explicitly).
    PEBBLETC_RETURN_IF_ERROR(TaInterruptStatus(ctx_));
    if (ctx_ != nullptr) ++ctx_->counters.inclusions;
    return NbtaInclusionResult{true, std::nullopt};
  }

 private:
  // Seeds one pair per (leaf symbol, distinct A-target): S is B's full
  // leaf-target set for the symbol — the exact B-reach of the one-node tree.
  Status SeedLeaves() {
    std::vector<bool> a_seen(a_.num_states(), false);
    std::vector<StateId> a_targets;
    for (SymbolId c : alphabet_.LeafSymbols()) {
      auto a_row = a_.LeafTargets(c);
      if (a_row.empty()) continue;
      std::vector<StateId> s;
      for (StateId q : b_.LeafTargets(c)) {
        if (!b_seen_[q]) {
          b_seen_[q] = true;
          s.push_back(q);
        }
      }
      for (StateId q : s) b_seen_[q] = false;
      std::sort(s.begin(), s.end());
      const uint32_t set_id = InternSet(std::move(s));
      a_targets.clear();
      for (StateId q : a_row) {
        if (!a_seen[q]) {
          a_seen[q] = true;
          a_targets.push_back(q);
        }
      }
      for (StateId q : a_targets) a_seen[q] = false;
      for (StateId q : a_targets) {
        PEBBLETC_RETURN_IF_ERROR(Offer(q, set_id, c, kNoPair, kNoPair));
        if (done_) return Status::OK();
      }
    }
    return Status::OK();
  }

  // Expands f(lp, rp) for every binary symbol f: A-successors of
  // (q_lp, q_rp) first; only when some exist is Post_B computed/interned.
  Status Combine(uint32_t lp, uint32_t rp, std::vector<StateId>* a_succs) {
    for (SymbolId f : alphabet_.BinarySymbols()) {
      const StateId ql = pairs_[lp].q;
      const StateId qr = pairs_[rp].q;
      auto row = a_.SymbolLeft(f, ql);
      TaCountRules(ctx_, row.size());
      a_succs->clear();
      for (const auto& rt : row) {
        if (rt.right == qr) a_succs->push_back(rt.to);
      }
      if (a_succs->empty()) continue;
      std::sort(a_succs->begin(), a_succs->end());
      a_succs->erase(std::unique(a_succs->begin(), a_succs->end()),
                     a_succs->end());
      const uint32_t set_id = PostSet(f, pairs_[lp].set, pairs_[rp].set);
      for (StateId q : *a_succs) {
        PEBBLETC_RETURN_IF_ERROR(Offer(q, set_id, f, lp, rp));
        if (done_) return Status::OK();
      }
    }
    return Status::OK();
  }

  // Post_B(f, S1, S2), interned and memoized per (f, S1, S2) — set ids are
  // canonical, so the memo never recomputes a repeated combination.
  uint32_t PostSet(SymbolId f, uint32_t s1, uint32_t s2) {
    if (post_memo_.size() <= f) post_memo_.resize(f + 1);
    const uint64_t key = (static_cast<uint64_t>(s1) << 32) | s2;
    auto it = post_memo_[f].find(key);
    if (it != post_memo_[f].end()) return it->second;
    std::vector<StateId> out;
    const SetData& d2 = sets_[s2];
    for (StateId q1 : sets_[s1].elems) {
      auto row = b_.SymbolLeft(f, q1);
      TaCountRules(ctx_, row.size());
      for (const auto& rt : row) {
        if (d2.bits[rt.right] && !b_seen_[rt.to]) {
          b_seen_[rt.to] = true;
          out.push_back(rt.to);
        }
      }
    }
    for (StateId q : out) b_seen_[q] = false;
    std::sort(out.begin(), out.end());
    const uint32_t id = InternSet(std::move(out));
    post_memo_[f].emplace(key, id);
    return id;
  }

  uint32_t InternSet(std::vector<StateId> elems) {
    auto it = set_index_.find(elems);
    if (it != set_index_.end()) return it->second;
    SetData d;
    d.bits.assign(b_.num_states(), false);
    for (StateId q : elems) d.bits[q] = true;
    d.has_accepting = b_.AnyAccepting(d.bits);
    d.elems = elems;
    const uint32_t id = static_cast<uint32_t>(sets_.size());
    sets_.push_back(std::move(d));
    set_index_.emplace(std::move(elems), id);
    return id;
  }

  // Offers a candidate pair (q, S): subsumption-prune or intern, test for
  // refutation, enqueue. Sets done_/result_ when the verdict is reached.
  Status Offer(StateId q, uint32_t set_id, SymbolId symbol, uint32_t lp,
               uint32_t rp) {
    PEBBLETC_RETURN_IF_ERROR(TaCheckpoint(ctx_));
    const SetData& s = sets_[set_id];
    auto& anti = kept_[q];
    for (uint32_t k : anti) {
      if (pairs_[k].set == set_id ||
          SubsetOf(sets_[pairs_[k].set].elems, s.elems)) {
        if (ctx_ != nullptr) ++ctx_->counters.incl_pairs_pruned;
        return Status::OK();
      }
    }
    // Retire kept pairs the newcomer dominates (S ⊆ their set): they are
    // redundant for both refutation and further expansion.
    anti.erase(std::remove_if(anti.begin(), anti.end(),
                              [&](uint32_t k) {
                                if (!SubsetOf(s.elems,
                                              sets_[pairs_[k].set].elems)) {
                                  return false;
                                }
                                pairs_[k].dead = true;
                                return true;
                              }),
               anti.end());
    PEBBLETC_RETURN_IF_ERROR(TaOpContext::CheckBudget(
        pairs_.size() + 1, max_pairs_, "antichain pairs"));
    const uint32_t id = static_cast<uint32_t>(pairs_.size());
    pairs_.push_back({q, set_id, symbol, lp, rp, false});
    if (ctx_ != nullptr) ++ctx_->counters.incl_pairs_interned;
    if (a_.nbta().accepting[q] && !s.has_accepting) {
      PEBBLETC_ASSIGN_OR_RETURN(BinaryTree witness, BuildWitness(id));
      if (ctx_ != nullptr) ++ctx_->counters.inclusions;
      result_ = NbtaInclusionResult{false, std::move(witness)};
      done_ = true;
      return Status::OK();
    }
    anti.push_back(id);
    worklist_.push_back(id);
    return Status::OK();
  }

  // Replays the provenance chain of `bad` into a concrete tree. Iterative
  // (provenance chains can be deep) and checkpointed per node (shared
  // provenance is duplicated, so the tree can be much larger than the
  // arena).
  Result<BinaryTree> BuildWitness(uint32_t bad) const {
    struct Frame {
      uint32_t pair;
      int stage = 0;
      NodeId child[2] = {kNoNode, kNoNode};
    };
    BinaryTree t;
    NodeId root = kNoNode;
    std::vector<Frame> stack;
    stack.push_back({bad});
    auto deliver = [&](NodeId n) {
      stack.pop_back();
      if (stack.empty()) {
        root = n;
      } else {
        Frame& parent = stack.back();
        parent.child[parent.stage - 1] = n;
      }
    };
    while (!stack.empty()) {
      PEBBLETC_RETURN_IF_ERROR(TaCheckpoint(ctx_));
      Frame& f = stack.back();
      const Pair& pr = pairs_[f.pair];
      if (pr.left == kNoPair) {
        deliver(t.AddLeaf(pr.symbol));
      } else if (f.stage == 0) {
        f.stage = 1;
        stack.push_back({pr.left});
      } else if (f.stage == 1) {
        f.stage = 2;
        stack.push_back({pr.right});
      } else {
        deliver(t.AddInternal(pr.symbol, f.child[0], f.child[1]));
      }
    }
    t.SetRoot(root);
    return t;
  }

  const NbtaIndex& a_;
  const NbtaIndex& b_;
  const RankedAlphabet& alphabet_;
  TaOpContext* ctx_;
  const size_t max_pairs_;

  std::vector<Pair> pairs_;
  std::vector<SetData> sets_;
  std::unordered_map<std::vector<StateId>, uint32_t, VecHash> set_index_;
  // Per binary symbol: (s1 << 32 | s2) → interned Post set id.
  std::vector<std::unordered_map<uint64_t, uint32_t>> post_memo_;
  std::vector<std::vector<uint32_t>> kept_;  // live antichain per A-state
  std::vector<uint32_t> worklist_;           // FIFO; head_ is the cursor
  size_t head_ = 0;
  std::vector<uint32_t> processed_;
  std::vector<bool> b_seen_;  // scratch bitset over Q_B

  bool done_ = false;
  NbtaInclusionResult result_;
};

}  // namespace

Result<NbtaInclusionResult> NbtaIncludedIn(const NbtaIndex& a,
                                           const NbtaIndex& b,
                                           const RankedAlphabet& alphabet,
                                           TaOpContext* ctx) {
  PEBBLETC_CHECK(a.num_symbols() == b.num_symbols())
      << "NbtaIncludedIn requires automata over one alphabet";
  TaOpTimer timer(ctx);
  return AntichainSearch(a, b, alphabet, ctx).Run();
}

Result<NbtaInclusionResult> NbtaIncludedIn(const Nbta& a, const Nbta& b,
                                           const RankedAlphabet& alphabet,
                                           size_t max_pairs) {
  TaOpContext ctx;
  if (max_pairs != 0) ctx.budgets.max_antichain_pairs = max_pairs;
  NbtaIndex ia(a, &ctx);
  NbtaIndex ib(b, &ctx);
  return NbtaIncludedIn(ia, ib, alphabet, &ctx);
}

bool NbtaIsBottomUpDeterministic(const Nbta& a) {
  std::unordered_map<uint64_t, StateId> leaf_target;
  for (const auto& r : a.leaf_rules) {
    auto [it, inserted] = leaf_target.emplace(r.symbol, r.to);
    if (!inserted && it->second != r.to) return false;
  }
  // Key (symbol, left, right) → target; a second distinct target under the
  // same key is a nondeterministic choice. Hash on a mixed key, resolving
  // the (astronomically unlikely within one automaton) collisions by
  // re-deriving from packed fields: symbol/left/right each fit 21 bits for
  // every automaton this library builds (SymbolId/StateId are dense).
  std::unordered_map<uint64_t, StateId> rule_target;
  for (const auto& r : a.rules) {
    const uint64_t key = (static_cast<uint64_t>(r.symbol) << 42) |
                         (static_cast<uint64_t>(r.left) << 21) |
                         static_cast<uint64_t>(r.right);
    auto [it, inserted] = rule_target.emplace(key, r.to);
    if (!inserted && it->second != r.to) return false;
  }
  return true;
}

Nbta SingletonTreeNbta(const BinaryTree& tree, uint32_t num_symbols) {
  PEBBLETC_CHECK(!tree.empty()) << "SingletonTreeNbta on empty tree";
  Nbta a;
  a.num_symbols = num_symbols;
  // One state per node; state q_n accepts exactly the subtree at n, so the
  // accepting root state accepts exactly {tree}.
  for (NodeId n = 0; n < tree.size(); ++n) a.AddState();
  for (NodeId n = 0; n < tree.size(); ++n) {
    if (tree.IsLeaf(n)) {
      a.AddLeafRule(tree.symbol(n), n);
    } else {
      a.AddRule(tree.symbol(n), tree.left(n), tree.right(n), n);
    }
  }
  a.accepting[tree.root()] = true;
  return a;
}

}  // namespace pebbletc
