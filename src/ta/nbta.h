// Nondeterministic bottom-up (frontier-to-root) tree automata over complete
// binary trees, and the full operation suite on regular tree languages:
// determinization, boolean operations, emptiness with witness extraction,
// membership, inclusion/equivalence, relabelings (used as cylindrification /
// projection by the MSO compiler), and language statistics.
//
// Bottom-up NTAs are the library's canonical representation of a *type*
// (regular tree language); top-down automata (Def. 2.1) convert losslessly in
// both directions (see src/ta/convert.h).
//
// Operations come in two flavors: a primary form consuming a compiled
// NbtaIndex (src/ta/nbta_index.h) — build the index once per automaton and
// share it across every operation — and a convenience form taking a bare
// Nbta that compiles a throwaway index internally. Budgets and counters
// thread through an optional TaOpContext (src/ta/op_context.h).

#ifndef PEBBLETC_TA_NBTA_H_
#define PEBBLETC_TA_NBTA_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/regex/nfa.h"  // StateId
#include "src/ta/op_context.h"
#include "src/tree/binary_tree.h"

namespace pebbletc {

class NbtaIndex;

/// A nondeterministic bottom-up tree automaton. A run assigns each leaf
/// labelled `a` some state q with a leaf rule a → q, and each internal node
/// labelled `a` with children in states (q1, q2) some q with a binary rule
/// a(q1, q2) → q; the tree is accepted if the root can be assigned an
/// accepting state.
struct Nbta {
  uint32_t num_states = 0;
  uint32_t num_symbols = 0;
  std::vector<bool> accepting;

  struct LeafRule {
    SymbolId symbol;
    StateId to;
  };
  std::vector<LeafRule> leaf_rules;

  struct BinaryRule {
    SymbolId symbol;
    StateId left;
    StateId right;
    StateId to;
  };
  std::vector<BinaryRule> rules;

  StateId AddState() {
    accepting.push_back(false);
    return num_states++;
  }
  void AddLeafRule(SymbolId symbol, StateId to) {
    leaf_rules.push_back({symbol, to});
  }
  void AddRule(SymbolId symbol, StateId left, StateId right, StateId to) {
    rules.push_back({symbol, left, right, to});
  }

  /// Range/rank validation against `alphabet`.
  Status Validate(const RankedAlphabet& alphabet) const;

  /// The set of states the subtree rooted at each node can evaluate to;
  /// returns per-node state bitsets (indexed by NodeId). Compiles a
  /// throwaway index; prefer NbtaRunStates with a shared one.
  std::vector<std::vector<bool>> RunStates(const BinaryTree& tree) const;

  /// Membership: does this automaton accept `tree`? Compiles a throwaway
  /// index; prefer NbtaAccepts with a shared one.
  bool Accepts(const BinaryTree& tree) const;
};

/// Per-node reachable-state bitsets (see Nbta::RunStates), off a shared
/// index.
std::vector<std::vector<bool>> NbtaRunStates(const NbtaIndex& a,
                                             const BinaryTree& tree);

/// Membership off a shared index. Short-circuits at the root: returns as
/// soon as one accepting root state is derivable instead of materializing
/// the full root bitset.
bool NbtaAccepts(const NbtaIndex& a, const BinaryTree& tree);

/// A deterministic, complete bottom-up automaton: exactly one state per
/// (symbol, child states) combination. Complementation is a flag flip.
class Dbta {
 public:
  Dbta(uint32_t num_states, uint32_t num_symbols);

  uint32_t num_states() const { return num_states_; }
  uint32_t num_symbols() const { return num_symbols_; }

  bool accepting(StateId q) const { return accepting_[q]; }
  void set_accepting(StateId q, bool acc) { accepting_[q] = acc; }

  StateId LeafState(SymbolId a) const { return leaf_[a]; }
  void SetLeafState(SymbolId a, StateId q) { leaf_[a] = q; }

  StateId Next(SymbolId a, StateId l, StateId r) const {
    return table_[(static_cast<size_t>(a) * num_states_ + l) * num_states_ + r];
  }
  void SetNext(SymbolId a, StateId l, StateId r, StateId to) {
    table_[(static_cast<size_t>(a) * num_states_ + l) * num_states_ + r] = to;
  }

  /// Evaluates the tree bottom-up to its unique root state.
  StateId Eval(const BinaryTree& tree) const;
  bool Accepts(const BinaryTree& tree) const {
    return accepting_[Eval(tree)];
  }

  /// View as an Nbta, materializing one rule per *rank-valid* table entry
  /// (leaf rules for Σ0 symbols, binary rules for Σ2 symbols).
  Nbta ToNbta(const RankedAlphabet& alphabet) const;

 private:
  uint32_t num_states_;
  uint32_t num_symbols_;
  std::vector<bool> accepting_;
  std::vector<StateId> leaf_;
  std::vector<StateId> table_;
};

/// Subset construction (only reachable subsets are materialized), frontier
/// driven: each (symbol, subset, subset) pair is expanded exactly once, via
/// uint32 masks for inputs of ≤ 16 states and packed bitsets above that (see
/// docs/DETERMINIZE.md for the regimes and invariants). May be exponential.
///
/// Budgets: `max_det_states` (0 = unlimited) aborts with kResourceExhausted
/// once the interned-subset count exceeds it; a hard transition-table cap
/// (2^28 entries) fails the same way. Deadlines/cancellation are polled
/// between frontier pairs and surface as kDeadlineExceeded / kCancelled.
/// Counters: `det_subsets_interned` and `det_pairs_expanded` record frontier
/// progress on every exit path (including failures); `determinizations` and
/// `states_materialized` advance only on success.
Result<Dbta> DeterminizeNbta(const NbtaIndex& a, const RankedAlphabet& alphabet,
                             TaOpContext* ctx = nullptr);
Result<Dbta> DeterminizeNbta(const Nbta& a, const RankedAlphabet& alphabet,
                             size_t max_states = 0);

/// Complement *relative to well-ranked trees*: accepts exactly the trees over
/// `alphabet` that `a` rejects. Determinizes internally, so the
/// `max_det_states` budget applies and kResourceExhausted /
/// kDeadlineExceeded propagate from DeterminizeNbta unchanged.
Result<Nbta> ComplementNbta(const NbtaIndex& a, const RankedAlphabet& alphabet,
                            TaOpContext* ctx = nullptr);
Result<Nbta> ComplementNbta(const Nbta& a, const RankedAlphabet& alphabet,
                            size_t max_states = 0);

/// Language intersection via the product construction (no determinization).
Nbta IntersectNbta(const NbtaIndex& a, const NbtaIndex& b,
                   TaOpContext* ctx = nullptr);
Nbta IntersectNbta(const Nbta& a, const Nbta& b);

/// Language union via disjoint sum (no determinization).
Nbta UnionNbta(const Nbta& a, const Nbta& b);

/// True iff inst(a) = ∅.
bool IsEmptyNbta(const NbtaIndex& a, TaOpContext* ctx = nullptr);
bool IsEmptyNbta(const Nbta& a);

/// A size-minimal witness tree, or nullopt if the language is empty.
std::optional<BinaryTree> WitnessTree(const NbtaIndex& a,
                                      TaOpContext* ctx = nullptr);
std::optional<BinaryTree> WitnessTree(const Nbta& a);

/// inst(sub) ⊆ inst(super)? Dispatches to the antichain on-the-fly search
/// (NbtaIncludedIn, src/ta/inclusion.h, docs/INCLUSION.md): no explicit
/// determinization or complement is materialized; `super`'s subsets are
/// interned lazily along reachable product pairs and pruned by antichain
/// subsumption. Still exponential in |super| in the worst case. Budget:
/// `max_antichain_pairs` bounds the search (the `max_states` convenience
/// parameter maps onto it; 0 = default budget) and kResourceExhausted /
/// kDeadlineExceeded / kCancelled propagate. Callers wanting the refuting
/// tree should call NbtaIncludedIn directly.
Result<bool> NbtaIncludes(const Nbta& super, const Nbta& sub,
                          const RankedAlphabet& alphabet,
                          size_t max_states = 0);
Result<bool> NbtaIncludes(const Nbta& super, const Nbta& sub,
                          const RankedAlphabet& alphabet, TaOpContext* ctx);

/// inst(a) = inst(b)? Two antichain inclusion checks (one per direction),
/// each determinization-free; `max_antichain_pairs` bounds each direction
/// (the `max_states` convenience parameter maps onto it; 0 = default
/// budget) and kResourceExhausted / kDeadlineExceeded / kCancelled
/// propagate.
Result<bool> NbtaEquivalent(const Nbta& a, const Nbta& b,
                            const RankedAlphabet& alphabet,
                            size_t max_states = 0);
Result<bool> NbtaEquivalent(const Nbta& a, const Nbta& b,
                            const RankedAlphabet& alphabet, TaOpContext* ctx);

/// Removes states that are not inhabited (reachable bottom-up) or not
/// co-reachable (cannot lead to acceptance); shrinks rule lists accordingly.
Nbta TrimNbta(const NbtaIndex& a, TaOpContext* ctx = nullptr);
Nbta TrimNbta(const Nbta& a);

/// Canonical minimization of a deterministic automaton (Moore partition
/// refinement over inhabited states, then completion with a sink). The
/// result accepts the same language with the minimum number of states among
/// complete DBTAs. Does not determinize (the input already is); checkpoints
/// between refinement rounds, so kDeadlineExceeded / kCancelled can surface,
/// but no state budget applies.
Result<Dbta> MinimizeDbta(const Dbta& d, const RankedAlphabet& alphabet,
                          TaOpContext* ctx = nullptr);

/// Inverse relabeling (cylindrification): `map[b]` gives, for each symbol of
/// the *larger* alphabet, its image in a's alphabet. Returns an automaton
/// over the larger alphabet accepting {t | relabel(t) ∈ inst(a)}.
Nbta InverseRelabelNbta(const NbtaIndex& a, const std::vector<SymbolId>& map,
                        uint32_t new_num_symbols, TaOpContext* ctx = nullptr);
Nbta InverseRelabelNbta(const Nbta& a, const std::vector<SymbolId>& map,
                        uint32_t new_num_symbols);

/// Forward relabeling (projection): rewrites each symbol s of a's alphabet to
/// map[s] (over the smaller alphabet). Accepts {relabel(t) | t ∈ inst(a)}...
/// note this is the *image*, hence nondeterministic in general.
Nbta RelabelNbta(const Nbta& a, const std::vector<SymbolId>& map,
                 uint32_t new_num_symbols);

/// The automaton accepting every tree over `alphabet` (one state, total
/// rules).
Nbta UniversalNbta(const RankedAlphabet& alphabet);

/// The automaton accepting nothing.
Nbta EmptyLanguageNbta(const RankedAlphabet& alphabet);

/// Number of accepting *runs* on trees with exactly `num_nodes` nodes,
/// saturating at UINT64_MAX. When `a` is deterministic (e.g. obtained from
/// DeterminizeNbta(...).ToNbta()) this equals the number of accepted trees.
/// (Complete binary trees always have an odd node count.)
uint64_t CountAcceptedTrees(const Nbta& a, size_t num_nodes);

}  // namespace pebbletc

#endif  // PEBBLETC_TA_NBTA_H_
