// A small, lazily-started worker pool for the automaton algebra's parallel
// execution layer (docs/PARALLEL.md).
//
// The pool owns up to hardware_concurrency() - 1 persistent threads, spawned
// on the first Run() that needs them; a process that never requests
// num_threads > 1 never starts a thread. Run(n, body) executes body(0) ...
// body(n-1) — the *worker shares* of one parallel operation — across the
// caller thread plus however many pool threads are idle, and blocks until
// every share finished. Shares are claimed from a single atomic cursor, so an
// idle pool thread steals whichever share the caller has not reached yet;
// finer-grained stealing (batched frontier hand-off between shares) lives
// inside the operations themselves, keyed to their own data structures.
//
// Deadlock discipline: Run() never waits for a pool thread to pick a share
// up — the calling thread claims shares itself until none remain, then waits
// only for shares already *in flight* on other threads. Nested Run() calls
// (an op-level fork inside a worker share) therefore always make progress:
// worst case the nested caller executes every nested share serially.
//
// The pool is deliberately oblivious to budgets, deadlines, and counters:
// operations pass each share its own forked TaOpContext and merge on join
// (see TaOpContext::Fork / MergeChild in src/ta/op_context.h).

#ifndef PEBBLETC_TA_THREAD_POOL_H_
#define PEBBLETC_TA_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/ta/op_context.h"

namespace pebbletc {

class TaThreadPool {
 public:
  /// The process-wide pool. Construction is cheap (no threads yet); threads
  /// start on the first Run() with num_workers > 1.
  static TaThreadPool& Instance();

  /// max(1, std::thread::hardware_concurrency()).
  static uint32_t HardwareWorkers();

  /// Runs body(0..num_workers-1), caller participating, and returns when all
  /// shares completed. num_workers <= 1 calls body(0) inline with no
  /// synchronization at all (the serial path stays the serial path).
  /// `body` must not throw.
  void Run(uint32_t num_workers, const std::function<void(uint32_t)>& body);

  /// Threads currently started (for tests / diagnostics).
  uint32_t started_threads() const;

  ~TaThreadPool();
  TaThreadPool(const TaThreadPool&) = delete;
  TaThreadPool& operator=(const TaThreadPool&) = delete;

 private:
  TaThreadPool() = default;

  // One parallel operation: `next` is the share-claim cursor, `done` counts
  // completed shares. The job leaves the queue once every share is claimed;
  // completion is signalled through its own condvar so concurrent Run()s
  // do not wake each other spuriously.
  struct Job {
    std::function<void(uint32_t)> body;
    uint32_t total = 0;
    std::atomic<uint32_t> next{0};
    std::atomic<uint32_t> done{0};
    std::mutex mu;
    std::condition_variable all_done;
  };

  void EnsureThreads(uint32_t want);
  void WorkerLoop();
  // Claims and runs shares of `job` until none remain; returns the number of
  // shares this thread executed.
  static uint32_t RunShares(Job& job);

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::shared_ptr<Job>> queue_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
};

/// Resolves the worker count an operation should actually use for `ctx`:
/// budgets.num_threads, with 0 mapped to hardware concurrency. A context
/// carrying a fault injector is always serial — injection ordinals are only
/// deterministic on the serial path — and so is a null context.
inline uint32_t TaEffectiveThreads(const TaOpContext* ctx) {
  if (ctx == nullptr || ctx->fault != nullptr) return 1;
  const uint32_t n = ctx->budgets.num_threads;
  return n == 0 ? TaThreadPool::HardwareWorkers() : n;
}

}  // namespace pebbletc

#endif  // PEBBLETC_TA_THREAD_POOL_H_
