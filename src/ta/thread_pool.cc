#include "src/ta/thread_pool.h"

#include <algorithm>

namespace pebbletc {

TaThreadPool& TaThreadPool::Instance() {
  static TaThreadPool pool;
  return pool;
}

uint32_t TaThreadPool::HardwareWorkers() {
  return std::max(1u, std::thread::hardware_concurrency());
}

uint32_t TaThreadPool::started_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<uint32_t>(threads_.size());
}

TaThreadPool::~TaThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TaThreadPool::EnsureThreads(uint32_t want) {
  const uint32_t cap = HardwareWorkers() - 1;
  want = std::min(want, cap);
  std::lock_guard<std::mutex> lock(mu_);
  while (threads_.size() < want && !shutdown_) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

uint32_t TaThreadPool::RunShares(Job& job) {
  uint32_t ran = 0;
  for (;;) {
    const uint32_t share = job.next.fetch_add(1, std::memory_order_relaxed);
    if (share >= job.total) break;
    job.body(share);
    ++ran;
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.total) {
      // Last share out: wake the Run() caller (which may be parked).
      std::lock_guard<std::mutex> lock(job.mu);
      job.all_done.notify_all();
    }
  }
  return ran;
}

void TaThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] {
        return shutdown_ || !queue_.empty();
      });
      if (shutdown_) return;
      job = queue_.front();
      // Pop fully-claimed jobs so the queue only holds jobs with work left.
      if (job->next.load(std::memory_order_relaxed) >= job->total) {
        queue_.pop_front();
        continue;
      }
    }
    RunShares(*job);
  }
}

void TaThreadPool::Run(uint32_t num_workers,
                       const std::function<void(uint32_t)>& body) {
  if (num_workers <= 1) {
    body(0);
    return;
  }
  EnsureThreads(num_workers - 1);
  auto job = std::make_shared<Job>();
  job->body = body;
  job->total = num_workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_) queue_.push_back(job);
  }
  work_available_.notify_all();
  // The caller claims shares itself, so completion never depends on a pool
  // thread being free (see the deadlock discipline in the header).
  RunShares(*job);
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->all_done.wait(lock, [&job] {
      return job->done.load(std::memory_order_acquire) >= job->total;
    });
  }
  // Drop the job from the queue if no worker got around to it.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->get() == job.get()) {
      queue_.erase(it);
      break;
    }
  }
}

}  // namespace pebbletc
