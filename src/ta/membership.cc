#include "src/ta/membership.h"

#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/xml/xml.h"

namespace pebbletc {

Result<MembershipEngine> MembershipEngine::Compile(const Nbta& nbta,
                                                   const RankedAlphabet& sigma,
                                                   TaOpContext* ctx,
                                                   TaOpCache* cache) {
  MembershipEngine engine;
  engine.nbta_ = std::make_shared<const Nbta>(nbta);
  engine.index_ = std::make_shared<const NbtaIndex>(*engine.nbta_, ctx);
  TaAlgebra algebra(cache);
  Result<std::shared_ptr<const Dbta>> table =
      algebra.MembershipTable(*engine.index_, sigma, ctx);
  if (table.ok()) {
    engine.table_ = std::move(*table);
    return engine;
  }
  if (table.status().code() == StatusCode::kResourceExhausted) {
    // Determinization blew the state budget: degrade to the reach-set route.
    // Queries stay correct and report the degradation via
    // membership_fallbacks.
    return engine;
  }
  return table.status();
}

Result<bool> MembershipEngine::Accepts(
    const BinaryTree& tree, TaOpContext* ctx,
    std::pmr::memory_resource* scratch) const {
  PEBBLETC_CHECK(nbta_ != nullptr) << "Accepts on a default MembershipEngine";
  if (tree.empty()) return Status::InvalidArgument("membership of empty tree");
  if (table_ == nullptr) {
    if (ctx != nullptr) ++ctx->counters.membership_fallbacks;
    PEBBLETC_RETURN_IF_ERROR(TaCheckpoint(ctx));
    bool accepted = NbtaAccepts(*index_, tree);
    PEBBLETC_RETURN_IF_ERROR(TaInterruptStatus(ctx));
    return accepted;
  }
  const Dbta& d = *table_;
  if (scratch == nullptr) scratch = std::pmr::get_default_resource();
  // Children are always created before parents (BinaryTree invariant), so
  // ascending NodeId order is a valid bottom-up evaluation order.
  std::pmr::vector<StateId> state(tree.size(), StateId{0}, scratch);
  for (NodeId n = 0; n < tree.size(); ++n) {
    PEBBLETC_RETURN_IF_ERROR(TaCheckpoint(ctx));
    state[n] = tree.IsLeaf(n)
                   ? d.LeafState(tree.symbol(n))
                   : d.Next(tree.symbol(n), state[tree.left(n)],
                            state[tree.right(n)]);
  }
  if (ctx != nullptr) ++ctx->counters.membership_fast_hits;
  return d.accepting(state[tree.root()]);
}

Result<StreamVerdict> StreamingValidateXml(std::string_view xml,
                                           const Dbta& table,
                                           const EncodedAlphabet& enc,
                                           const Alphabet& tags,
                                           TaOpContext* ctx,
                                           std::pmr::memory_resource* scratch) {
  if (scratch == nullptr) scratch = std::pmr::get_default_resource();
  // One frame per open element: its encoded tag symbol and where its
  // children's states start on the shared state stack.
  struct Frame {
    SymbolId tag_sym;
    size_t child_base;
  };
  std::pmr::vector<Frame> frames{scratch};
  std::pmr::vector<StateId> states{scratch};
  const StateId qnil = table.LeafState(enc.nil);

  XmlEventReader reader(xml);
  StreamVerdict verdict;
  bool folding = true;  // false once an unknown tag stops the fold
  while (true) {
    PEBBLETC_RETURN_IF_ERROR(TaCheckpoint(ctx));
    PEBBLETC_ASSIGN_OR_RETURN(XmlEventReader::Event ev, reader.Next());
    if (ev.kind == XmlEventReader::Kind::kEnd) break;
    if (!folding) continue;  // draining for well-formedness only
    if (ev.kind == XmlEventReader::Kind::kOpen) {
      const SymbolId tag = tags.Find(ev.name);
      if (tag == kNoSymbol) {
        verdict.unknown_tag = std::string(ev.name);
        folding = false;
        continue;
      }
      frames.push_back({enc.tag_symbol[tag], states.size()});
    } else {
      // encode(a(T1..Tk)) = a(encode_f(T1..Tk), |); the forest is the
      // right-fold of the children's states over cons, and a childless
      // element is a(|, |).
      const Frame f = frames.back();
      frames.pop_back();
      StateId q;
      if (states.size() == f.child_base) {
        q = table.Next(f.tag_sym, qnil, qnil);
      } else {
        StateId forest = states.back();
        for (size_t i = states.size() - 1; i-- > f.child_base;) {
          forest = table.Next(enc.cons, states[i], forest);
        }
        states.resize(f.child_base);
        q = table.Next(f.tag_sym, forest, qnil);
      }
      states.push_back(q);
    }
  }
  if (!folding) return verdict;  // unknown tag: well-formed but not accepted
  PEBBLETC_CHECK(states.size() == 1) << "streaming fold imbalance";
  verdict.accepted = table.accepting(states.back());
  if (ctx != nullptr) ++ctx->counters.membership_fast_hits;
  return verdict;
}

}  // namespace pebbletc
