#include "src/tree/binary_tree.h"

#include <algorithm>
#include <string>
#include <utility>

namespace pebbletc {

NodeId BinaryTree::AddLeaf(SymbolId symbol) {
  NodeId id = static_cast<NodeId>(symbols_.size());
  symbols_.push_back(symbol);
  left_.push_back(kNoNode);
  right_.push_back(kNoNode);
  parent_.push_back(kNoNode);
  return id;
}

NodeId BinaryTree::AddInternal(SymbolId symbol, NodeId left, NodeId right) {
  PEBBLETC_CHECK(left < symbols_.size()) << "bad left child " << left;
  PEBBLETC_CHECK(right < symbols_.size()) << "bad right child " << right;
  PEBBLETC_CHECK(parent_[left] == kNoNode) << "left child already attached";
  PEBBLETC_CHECK(parent_[right] == kNoNode) << "right child already attached";
  PEBBLETC_CHECK(left != right) << "children must be distinct nodes";
  NodeId id = static_cast<NodeId>(symbols_.size());
  symbols_.push_back(symbol);
  left_.push_back(left);
  right_.push_back(right);
  parent_.push_back(kNoNode);
  parent_[left] = id;
  parent_[right] = id;
  return id;
}

void BinaryTree::SetRoot(NodeId root) {
  PEBBLETC_CHECK(root < symbols_.size()) << "bad root " << root;
  root_ = root;
}

Status BinaryTree::Validate(const RankedAlphabet& alphabet) const {
  if (empty()) return Status::OK();
  if (root_ == kNoNode) {
    return Status::FailedPrecondition("tree has nodes but no root");
  }
  if (parent_[root_] != kNoNode) {
    return Status::FailedPrecondition("root has a parent");
  }
  std::vector<bool> seen(size(), false);
  std::vector<NodeId> stack = {root_};
  size_t visited = 0;
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    if (seen[n]) {
      return Status::FailedPrecondition("node " + std::to_string(n) +
                                        " reachable twice");
    }
    seen[n] = true;
    ++visited;
    if (!alphabet.Contains(symbols_[n])) {
      return Status::FailedPrecondition("node " + std::to_string(n) +
                                        " has symbol outside the alphabet");
    }
    const bool leaf = left_[n] == kNoNode;
    if (leaf != (right_[n] == kNoNode)) {
      return Status::FailedPrecondition("node " + std::to_string(n) +
                                        " has exactly one child");
    }
    const int want_rank = leaf ? 0 : 2;
    if (alphabet.Rank(symbols_[n]) != want_rank) {
      return Status::FailedPrecondition(
          "node " + std::to_string(n) + " labelled '" +
          alphabet.Name(symbols_[n]) + "' violates symbol rank");
    }
    if (!leaf) {
      for (NodeId c : {left_[n], right_[n]}) {
        if (parent_[c] != n) {
          return Status::FailedPrecondition("parent link of node " +
                                            std::to_string(c) + " is wrong");
        }
        stack.push_back(c);
      }
    }
  }
  if (visited != size()) {
    return Status::FailedPrecondition(
        std::to_string(size() - visited) +
        " node(s) unreachable from the root");
  }
  return Status::OK();
}

bool BinaryTree::SubtreeEquals(const BinaryTree& ta, NodeId a,
                               const BinaryTree& tb, NodeId b) {
  std::vector<std::pair<NodeId, NodeId>> stack = {{a, b}};
  while (!stack.empty()) {
    auto [x, y] = stack.back();
    stack.pop_back();
    if (ta.symbol(x) != tb.symbol(y)) return false;
    const bool xl = ta.IsLeaf(x);
    if (xl != tb.IsLeaf(y)) return false;
    if (!xl) {
      stack.push_back({ta.left(x), tb.left(y)});
      stack.push_back({ta.right(x), tb.right(y)});
    }
  }
  return true;
}

size_t BinaryTree::SubtreeSize(NodeId n) const {
  size_t count = 0;
  std::vector<NodeId> stack = {n};
  while (!stack.empty()) {
    NodeId x = stack.back();
    stack.pop_back();
    ++count;
    if (!IsLeaf(x)) {
      stack.push_back(left(x));
      stack.push_back(right(x));
    }
  }
  return count;
}

size_t BinaryTree::Depth() const {
  if (empty()) return 0;
  size_t best = 0;
  std::vector<std::pair<NodeId, size_t>> stack = {{root_, 1}};
  while (!stack.empty()) {
    auto [n, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    if (!IsLeaf(n)) {
      stack.push_back({left(n), d + 1});
      stack.push_back({right(n), d + 1});
    }
  }
  return best;
}

NodeId BinaryTree::CopySubtree(const BinaryTree& src, NodeId src_node) {
  // Iterative post-order (children before parents) so deep trees do not
  // overflow the call stack.
  struct Frame {
    NodeId src;
    bool expanded;
  };
  std::vector<Frame> stack = {{src_node, false}};
  std::vector<NodeId> results;  // post-order result stack
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (src.IsLeaf(f.src)) {
      results.push_back(AddLeaf(src.symbol(f.src)));
    } else if (!f.expanded) {
      stack.push_back({f.src, true});
      stack.push_back({src.right(f.src), false});
      stack.push_back({src.left(f.src), false});
    } else {
      // Children were pushed left-then-right, so they pop off `results` in
      // reverse: right first.
      PEBBLETC_CHECK(results.size() >= 2) << "copy stack underflow";
      NodeId r = results.back();
      results.pop_back();
      NodeId l = results.back();
      results.pop_back();
      results.push_back(AddInternal(src.symbol(f.src), l, r));
    }
  }
  PEBBLETC_CHECK(results.size() == 1) << "copy stack imbalance";
  return results.back();
}

}  // namespace pebbletc
