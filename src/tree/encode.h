// The unranked→binary encoding of Section 2.1 (Figure 1) and its inverse.
//
//   encode(a(F))   = a(encode_f(F), |)
//   encode(a())    = a(|, |)
//   encode_f(T.F)  = -(encode(T), encode_f(F))
//   encode_f(T)    = encode(T)
//
// The encoding is a bijection between unranked trees over Σ and the set of
// well-formed binary trees over Σ′ = Σ ∪ {-, |}; `DecodeTree` rejects binary
// trees outside the image of `EncodeTree`.

#ifndef PEBBLETC_TREE_ENCODE_H_
#define PEBBLETC_TREE_ENCODE_H_

#include <memory_resource>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/tree/binary_tree.h"
#include "src/tree/unranked_tree.h"

namespace pebbletc {

/// Encodes `tree` (over the unranked alphabet underlying `enc`) into a binary
/// tree over `enc.ranked`. Fails if `tree` is invalid or uses tags outside
/// `enc.tag_symbol`. If `node_map` is non-null it receives, for each unranked
/// NodeId, the binary NodeId of its (label-preserving) image — the bijection
/// of Section 2.1. Non-null `mem` places the output tree's storage there
/// (arena-scoped encoding, docs/VALIDATION.md).
Result<BinaryTree> EncodeTree(const UnrankedTree& tree,
                              const EncodedAlphabet& enc,
                              std::vector<NodeId>* node_map = nullptr,
                              std::pmr::memory_resource* mem = nullptr);

/// Decodes a binary tree produced by `EncodeTree`. Fails with
/// kInvalidArgument if `tree` is not a well-formed encoding (e.g. a tag node
/// whose right child is not `|`, or a `-` node heading no tree).
Result<UnrankedTree> DecodeTree(const BinaryTree& tree,
                                const EncodedAlphabet& enc);

}  // namespace pebbletc

#endif  // PEBBLETC_TREE_ENCODE_H_
