// Random tree generation for property tests and benchmark workloads.

#ifndef PEBBLETC_TREE_RANDOM_TREE_H_
#define PEBBLETC_TREE_RANDOM_TREE_H_

#include <cstddef>

#include "src/alphabet/alphabet.h"
#include "src/common/rng.h"
#include "src/tree/binary_tree.h"
#include "src/tree/unranked_tree.h"

namespace pebbletc {

/// Options controlling random unranked tree shape.
struct RandomUnrankedOptions {
  /// Approximate number of nodes; generation stops expanding once the budget
  /// is spent, so actual size is within [1, target_size + max_children].
  size_t target_size = 32;
  /// Maximum children per node.
  size_t max_children = 4;
  /// Maximum depth.
  size_t max_depth = 64;
};

/// Generates a random unranked tree whose tags are drawn uniformly from
/// `alphabet` (which must be non-empty).
UnrankedTree RandomUnrankedTree(const Alphabet& alphabet, Rng& rng,
                                const RandomUnrankedOptions& options);

/// Generates a random complete binary tree with exactly `num_internal`
/// internal nodes (hence num_internal + 1 leaves), symbols drawn uniformly
/// from the rank-appropriate part of `alphabet`, which must contain at least
/// one leaf symbol and — when num_internal > 0 — one binary symbol. The shape
/// is drawn by recursive uniform splitting of the internal-node budget.
BinaryTree RandomBinaryTree(const RankedAlphabet& alphabet, Rng& rng,
                            size_t num_internal);

}  // namespace pebbletc

#endif  // PEBBLETC_TREE_RANDOM_TREE_H_
