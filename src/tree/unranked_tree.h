// Unranked ordered labelled trees — the paper's model of XML documents
// (Section 2.1/2.2). Nodes carry a tag from an (unranked) Alphabet and an
// ordered list of children of unbounded length.

#ifndef PEBBLETC_TREE_UNRANKED_TREE_H_
#define PEBBLETC_TREE_UNRANKED_TREE_H_

#include <cstdint>
#include <memory_resource>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/check.h"
#include "src/common/status.h"
#include "src/tree/binary_tree.h"

namespace pebbletc {

/// An unranked ordered tree. Nodes are created bottom-up and addressed by
/// dense NodeId (shared with BinaryTree).
class UnrankedTree {
 public:
  UnrankedTree() = default;

  /// Arena-backed construction (docs/VALIDATION.md): node vectors — including
  /// every per-node child list — live in `mem` and are reclaimed in O(1) by
  /// the arena reset. Copies escape to the default heap; moves keep the
  /// resource.
  explicit UnrankedTree(std::pmr::memory_resource* mem)
      : tags_(mem), children_(mem), parent_(mem) {}

  /// Appends a node labelled `tag` with the given ordered children (possibly
  /// empty) and returns its id. Children must exist and be unattached.
  NodeId AddNode(SymbolId tag, std::vector<NodeId> children = {});

  /// Declares `root` as the root node.
  void SetRoot(NodeId root);

  NodeId root() const { return root_; }
  size_t size() const { return tags_.size(); }
  bool empty() const { return tags_.empty(); }

  SymbolId tag(NodeId n) const {
    PEBBLETC_CHECK(n < tags_.size()) << "invalid node " << n;
    return tags_[n];
  }
  const std::pmr::vector<NodeId>& children(NodeId n) const {
    PEBBLETC_CHECK(n < children_.size()) << "invalid node " << n;
    return children_[n];
  }
  NodeId parent(NodeId n) const {
    PEBBLETC_CHECK(n < parent_.size()) << "invalid node " << n;
    return parent_[n];
  }
  bool IsLeaf(NodeId n) const { return children(n).empty(); }

  /// Structural validation: root set, all nodes reachable exactly once,
  /// parent links consistent, tags within `alphabet`.
  Status Validate(const Alphabet& alphabet) const;

  /// Structural equality of subtrees.
  static bool SubtreeEquals(const UnrankedTree& ta, NodeId a,
                            const UnrankedTree& tb, NodeId b);

  friend bool operator==(const UnrankedTree& a, const UnrankedTree& b) {
    if (a.empty() != b.empty()) return false;
    if (a.empty()) return true;
    return SubtreeEquals(a, a.root(), b, b.root());
  }

  size_t Depth() const;

 private:
  std::pmr::vector<SymbolId> tags_;
  std::pmr::vector<std::pmr::vector<NodeId>> children_;
  std::pmr::vector<NodeId> parent_;
  NodeId root_ = kNoNode;
};

}  // namespace pebbletc

#endif  // PEBBLETC_TREE_UNRANKED_TREE_H_
