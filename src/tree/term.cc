#include "src/tree/term.h"

#include <cctype>
#include <string>
#include <utility>
#include <vector>

namespace pebbletc {

namespace {

// A minimal recursive-descent tokenizer/cursor over term syntax.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  // A symbol name: [A-Za-z0-9_]+ or a single '-' or '|'.
  Result<std::string> ReadName() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::ParseError("expected symbol name at end of input");
    }
    char c = text_[pos_];
    if (c == '-' || c == '|') {
      ++pos_;
      return std::string(1, c);
    }
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' at offset " + std::to_string(pos_));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  size_t pos() const { return pos_; }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

// Iterative (explicit-stack) parser: nesting depth is bounded by heap, not
// the call stack, so adversarially deep terms cannot overflow.
Result<NodeId> ParseUnrankedNode(Cursor& cur, Alphabet* alphabet,
                                 UnrankedTree* tree) {
  // One frame per open '(' whose children are still being parsed.
  struct Frame {
    SymbolId tag;
    std::vector<NodeId> kids;
  };
  std::vector<Frame> stack;
  while (true) {
    PEBBLETC_ASSIGN_OR_RETURN(std::string name, cur.ReadName());
    SymbolId tag = alphabet->Intern(name);
    if (cur.Consume('(') && !cur.Consume(')')) {
      stack.push_back({tag, {}});
      continue;  // descend into the first child
    }
    NodeId done = tree->AddNode(tag, {});
    // Attach the completed subtree upward, closing frames as ')' allows.
    while (true) {
      if (stack.empty()) return done;
      stack.back().kids.push_back(done);
      if (cur.Consume(',')) break;  // next sibling
      if (cur.Consume(')')) {
        Frame f = std::move(stack.back());
        stack.pop_back();
        done = tree->AddNode(f.tag, std::move(f.kids));
        continue;
      }
      return Status::ParseError("expected ',' or ')' at offset " +
                                std::to_string(cur.pos()));
    }
  }
}

Result<NodeId> ParseBinaryNode(Cursor& cur, const RankedAlphabet& alphabet,
                               BinaryTree* tree) {
  // One frame per binary node awaiting children; left < 0 until the left
  // subtree completes.
  struct Frame {
    SymbolId sym;
    std::string name;
    int64_t left = -1;
  };
  std::vector<Frame> stack;
  while (true) {
    PEBBLETC_ASSIGN_OR_RETURN(std::string name, cur.ReadName());
    SymbolId sym = alphabet.Find(name);
    if (sym == kNoSymbol) {
      return Status::ParseError("unknown symbol '" + name + "'");
    }
    NodeId done;
    if (cur.Peek() == '(') {
      cur.Consume('(');
      if (cur.Consume(')')) {
        if (alphabet.Rank(sym) != 0) {
          return Status::ParseError("binary symbol '" + name +
                                    "' used with no children");
        }
        done = tree->AddLeaf(sym);
      } else {
        if (alphabet.Rank(sym) != 2) {
          return Status::ParseError("leaf symbol '" + name +
                                    "' used with children");
        }
        stack.push_back({sym, std::move(name), -1});
        continue;  // descend into the left child
      }
    } else {
      if (alphabet.Rank(sym) != 0) {
        return Status::ParseError("binary symbol '" + name +
                                  "' used without children");
      }
      done = tree->AddLeaf(sym);
    }
    // Attach the completed subtree upward.
    while (true) {
      if (stack.empty()) return done;
      Frame& f = stack.back();
      if (f.left < 0) {
        f.left = done;
        if (!cur.Consume(',')) {
          return Status::ParseError("binary symbol '" + f.name +
                                    "' needs exactly two children");
        }
        break;  // parse the right child
      }
      if (!cur.Consume(')')) {
        return Status::ParseError("expected ')' at offset " +
                                  std::to_string(cur.pos()));
      }
      done = tree->AddInternal(f.sym, static_cast<NodeId>(f.left), done);
      stack.pop_back();
    }
  }
}

}  // namespace

Result<UnrankedTree> ParseUnrankedTerm(std::string_view text,
                                       Alphabet* alphabet) {
  Cursor cur(text);
  UnrankedTree tree;
  PEBBLETC_ASSIGN_OR_RETURN(NodeId root,
                            ParseUnrankedNode(cur, alphabet, &tree));
  if (!cur.AtEnd()) {
    return Status::ParseError("trailing input at offset " +
                              std::to_string(cur.pos()));
  }
  tree.SetRoot(root);
  return tree;
}

Result<BinaryTree> ParseBinaryTerm(std::string_view text,
                                   const RankedAlphabet& alphabet) {
  Cursor cur(text);
  BinaryTree tree;
  PEBBLETC_ASSIGN_OR_RETURN(NodeId root,
                            ParseBinaryNode(cur, alphabet, &tree));
  if (!cur.AtEnd()) {
    return Status::ParseError("trailing input at offset " +
                              std::to_string(cur.pos()));
  }
  tree.SetRoot(root);
  return tree;
}

namespace {

void AppendUnranked(const UnrankedTree& tree, const Alphabet& alphabet,
                    NodeId n, std::string* out) {
  *out += alphabet.Name(tree.tag(n));
  const auto& kids = tree.children(n);
  if (kids.empty()) return;
  *out += '(';
  for (size_t i = 0; i < kids.size(); ++i) {
    if (i > 0) *out += ',';
    AppendUnranked(tree, alphabet, kids[i], out);
  }
  *out += ')';
}

void AppendBinary(const BinaryTree& tree, const RankedAlphabet& alphabet,
                  NodeId n, std::string* out) {
  *out += alphabet.Name(tree.symbol(n));
  if (tree.IsLeaf(n)) return;
  *out += '(';
  AppendBinary(tree, alphabet, tree.left(n), out);
  *out += ',';
  AppendBinary(tree, alphabet, tree.right(n), out);
  *out += ')';
}

}  // namespace

std::string UnrankedTermString(const UnrankedTree& tree,
                               const Alphabet& alphabet) {
  if (tree.empty()) return "";
  std::string out;
  AppendUnranked(tree, alphabet, tree.root(), &out);
  return out;
}

std::string BinaryTermString(const BinaryTree& tree,
                             const RankedAlphabet& alphabet) {
  if (tree.empty()) return "";
  std::string out;
  AppendBinary(tree, alphabet, tree.root(), &out);
  return out;
}

}  // namespace pebbletc
