#include "src/tree/term.h"

#include <cctype>
#include <string>
#include <utility>
#include <vector>

namespace pebbletc {

namespace {

// A minimal recursive-descent tokenizer/cursor over term syntax.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  // A symbol name: [A-Za-z0-9_]+ or a single '-' or '|'.
  Result<std::string> ReadName() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::ParseError("expected symbol name at end of input");
    }
    char c = text_[pos_];
    if (c == '-' || c == '|') {
      ++pos_;
      return std::string(1, c);
    }
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' at offset " + std::to_string(pos_));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  size_t pos() const { return pos_; }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

Result<NodeId> ParseUnrankedNode(Cursor& cur, Alphabet* alphabet,
                                 UnrankedTree* tree) {
  PEBBLETC_ASSIGN_OR_RETURN(std::string name, cur.ReadName());
  SymbolId tag = alphabet->Intern(name);
  std::vector<NodeId> kids;
  if (cur.Consume('(')) {
    if (!cur.Consume(')')) {
      while (true) {
        PEBBLETC_ASSIGN_OR_RETURN(NodeId child,
                                  ParseUnrankedNode(cur, alphabet, tree));
        kids.push_back(child);
        if (cur.Consume(',')) continue;
        if (cur.Consume(')')) break;
        return Status::ParseError("expected ',' or ')' at offset " +
                                  std::to_string(cur.pos()));
      }
    }
  }
  return tree->AddNode(tag, std::move(kids));
}

Result<NodeId> ParseBinaryNode(Cursor& cur, const RankedAlphabet& alphabet,
                               BinaryTree* tree) {
  PEBBLETC_ASSIGN_OR_RETURN(std::string name, cur.ReadName());
  SymbolId sym = alphabet.Find(name);
  if (sym == kNoSymbol) {
    return Status::ParseError("unknown symbol '" + name + "'");
  }
  if (cur.Peek() == '(') {
    cur.Consume('(');
    if (cur.Consume(')')) {
      if (alphabet.Rank(sym) != 0) {
        return Status::ParseError("binary symbol '" + name +
                                  "' used with no children");
      }
      return tree->AddLeaf(sym);
    }
    if (alphabet.Rank(sym) != 2) {
      return Status::ParseError("leaf symbol '" + name +
                                "' used with children");
    }
    PEBBLETC_ASSIGN_OR_RETURN(NodeId l, ParseBinaryNode(cur, alphabet, tree));
    if (!cur.Consume(',')) {
      return Status::ParseError("binary symbol '" + name +
                                "' needs exactly two children");
    }
    PEBBLETC_ASSIGN_OR_RETURN(NodeId r, ParseBinaryNode(cur, alphabet, tree));
    if (!cur.Consume(')')) {
      return Status::ParseError("expected ')' at offset " +
                                std::to_string(cur.pos()));
    }
    return tree->AddInternal(sym, l, r);
  }
  if (alphabet.Rank(sym) != 0) {
    return Status::ParseError("binary symbol '" + name +
                              "' used without children");
  }
  return tree->AddLeaf(sym);
}

}  // namespace

Result<UnrankedTree> ParseUnrankedTerm(std::string_view text,
                                       Alphabet* alphabet) {
  Cursor cur(text);
  UnrankedTree tree;
  PEBBLETC_ASSIGN_OR_RETURN(NodeId root,
                            ParseUnrankedNode(cur, alphabet, &tree));
  if (!cur.AtEnd()) {
    return Status::ParseError("trailing input at offset " +
                              std::to_string(cur.pos()));
  }
  tree.SetRoot(root);
  return tree;
}

Result<BinaryTree> ParseBinaryTerm(std::string_view text,
                                   const RankedAlphabet& alphabet) {
  Cursor cur(text);
  BinaryTree tree;
  PEBBLETC_ASSIGN_OR_RETURN(NodeId root,
                            ParseBinaryNode(cur, alphabet, &tree));
  if (!cur.AtEnd()) {
    return Status::ParseError("trailing input at offset " +
                              std::to_string(cur.pos()));
  }
  tree.SetRoot(root);
  return tree;
}

namespace {

void AppendUnranked(const UnrankedTree& tree, const Alphabet& alphabet,
                    NodeId n, std::string* out) {
  *out += alphabet.Name(tree.tag(n));
  const auto& kids = tree.children(n);
  if (kids.empty()) return;
  *out += '(';
  for (size_t i = 0; i < kids.size(); ++i) {
    if (i > 0) *out += ',';
    AppendUnranked(tree, alphabet, kids[i], out);
  }
  *out += ')';
}

void AppendBinary(const BinaryTree& tree, const RankedAlphabet& alphabet,
                  NodeId n, std::string* out) {
  *out += alphabet.Name(tree.symbol(n));
  if (tree.IsLeaf(n)) return;
  *out += '(';
  AppendBinary(tree, alphabet, tree.left(n), out);
  *out += ',';
  AppendBinary(tree, alphabet, tree.right(n), out);
  *out += ')';
}

}  // namespace

std::string UnrankedTermString(const UnrankedTree& tree,
                               const Alphabet& alphabet) {
  if (tree.empty()) return "";
  std::string out;
  AppendUnranked(tree, alphabet, tree.root(), &out);
  return out;
}

std::string BinaryTermString(const BinaryTree& tree,
                             const RankedAlphabet& alphabet) {
  if (tree.empty()) return "";
  std::string out;
  AppendBinary(tree, alphabet, tree.root(), &out);
  return out;
}

}  // namespace pebbletc
