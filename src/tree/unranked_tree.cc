#include "src/tree/unranked_tree.h"

#include <algorithm>
#include <string>
#include <utility>

namespace pebbletc {

NodeId UnrankedTree::AddNode(SymbolId tag, std::vector<NodeId> children) {
  NodeId id = static_cast<NodeId>(tags_.size());
  for (NodeId c : children) {
    PEBBLETC_CHECK(c < tags_.size()) << "bad child " << c;
    PEBBLETC_CHECK(parent_[c] == kNoNode) << "child already attached";
  }
  tags_.push_back(tag);
  // emplace_back so the outer vector's allocator (uses-allocator
  // construction) propagates into the per-node child list.
  children_.emplace_back(children.begin(), children.end());
  parent_.push_back(kNoNode);
  for (NodeId c : children_.back()) parent_[c] = id;
  return id;
}

void UnrankedTree::SetRoot(NodeId root) {
  PEBBLETC_CHECK(root < tags_.size()) << "bad root " << root;
  root_ = root;
}

Status UnrankedTree::Validate(const Alphabet& alphabet) const {
  if (empty()) return Status::OK();
  if (root_ == kNoNode) {
    return Status::FailedPrecondition("tree has nodes but no root");
  }
  if (parent_[root_] != kNoNode) {
    return Status::FailedPrecondition("root has a parent");
  }
  std::vector<bool> seen(size(), false);
  std::vector<NodeId> stack = {root_};
  size_t visited = 0;
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    if (seen[n]) {
      return Status::FailedPrecondition("node " + std::to_string(n) +
                                        " reachable twice");
    }
    seen[n] = true;
    ++visited;
    if (!alphabet.Contains(tags_[n])) {
      return Status::FailedPrecondition("node " + std::to_string(n) +
                                        " has tag outside the alphabet");
    }
    for (NodeId c : children_[n]) {
      if (parent_[c] != n) {
        return Status::FailedPrecondition("parent link of node " +
                                          std::to_string(c) + " is wrong");
      }
      stack.push_back(c);
    }
  }
  if (visited != size()) {
    return Status::FailedPrecondition(
        std::to_string(size() - visited) +
        " node(s) unreachable from the root");
  }
  return Status::OK();
}

bool UnrankedTree::SubtreeEquals(const UnrankedTree& ta, NodeId a,
                                 const UnrankedTree& tb, NodeId b) {
  std::vector<std::pair<NodeId, NodeId>> stack = {{a, b}};
  while (!stack.empty()) {
    auto [x, y] = stack.back();
    stack.pop_back();
    if (ta.tag(x) != tb.tag(y)) return false;
    const auto& cx = ta.children(x);
    const auto& cy = tb.children(y);
    if (cx.size() != cy.size()) return false;
    for (size_t i = 0; i < cx.size(); ++i) stack.push_back({cx[i], cy[i]});
  }
  return true;
}

size_t UnrankedTree::Depth() const {
  if (empty()) return 0;
  size_t best = 0;
  std::vector<std::pair<NodeId, size_t>> stack = {{root_, 1}};
  while (!stack.empty()) {
    auto [n, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    for (NodeId c : children(n)) stack.push_back({c, d + 1});
  }
  return best;
}

}  // namespace pebbletc
