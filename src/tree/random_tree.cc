#include "src/tree/random_tree.h"

#include <utility>
#include <vector>

namespace pebbletc {

UnrankedTree RandomUnrankedTree(const Alphabet& alphabet, Rng& rng,
                                const RandomUnrankedOptions& options) {
  PEBBLETC_CHECK(alphabet.size() > 0) << "empty alphabet";
  UnrankedTree tree;
  size_t budget = options.target_size == 0 ? 1 : options.target_size;

  // Grows a node at `depth`, consuming budget; returns the node id.
  struct Frame {
    size_t depth;
    bool expanded;
    size_t num_children;
  };
  std::vector<Frame> stack = {{1, false, 0}};
  std::vector<NodeId> results;
  --budget;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (!f.expanded) {
      size_t kids = 0;
      if (f.depth < options.max_depth && budget > 0) {
        kids = rng.NextBelow(options.max_children + 1);
        if (kids > budget) kids = budget;
        budget -= kids;
      }
      stack.push_back({f.depth, true, kids});
      for (size_t i = 0; i < kids; ++i) {
        stack.push_back({f.depth + 1, false, 0});
      }
    } else {
      std::vector<NodeId> kids(f.num_children);
      for (size_t i = f.num_children; i-- > 0;) {
        kids[i] = results.back();
        results.pop_back();
      }
      SymbolId tag = static_cast<SymbolId>(rng.NextBelow(alphabet.size()));
      results.push_back(tree.AddNode(tag, std::move(kids)));
    }
  }
  PEBBLETC_CHECK(results.size() == 1) << "generation stack imbalance";
  tree.SetRoot(results.back());
  return tree;
}

BinaryTree RandomBinaryTree(const RankedAlphabet& alphabet, Rng& rng,
                            size_t num_internal) {
  PEBBLETC_CHECK(!alphabet.LeafSymbols().empty()) << "no leaf symbols";
  PEBBLETC_CHECK(num_internal == 0 || !alphabet.BinarySymbols().empty())
      << "no binary symbols";
  BinaryTree tree;

  auto random_leaf = [&]() {
    const auto& ls = alphabet.LeafSymbols();
    return tree.AddLeaf(ls[rng.NextBelow(ls.size())]);
  };
  auto random_binary_symbol = [&]() {
    const auto& bs = alphabet.BinarySymbols();
    return bs[rng.NextBelow(bs.size())];
  };

  // Recursive random split with an explicit stack: a subtree with m internal
  // nodes splits m-1 of them between its two children uniformly.
  struct Frame {
    size_t internal;
    bool expanded;
  };
  std::vector<Frame> stack = {{num_internal, false}};
  std::vector<NodeId> results;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.internal == 0) {
      results.push_back(random_leaf());
    } else if (!f.expanded) {
      size_t left = rng.NextBelow(f.internal);  // in [0, internal-1]
      stack.push_back({f.internal, true});
      stack.push_back({f.internal - 1 - left, false});  // right, pops second
      stack.push_back({left, false});                   // left, pops first
    } else {
      NodeId r = results.back();
      results.pop_back();
      NodeId l = results.back();
      results.pop_back();
      results.push_back(tree.AddInternal(random_binary_symbol(), l, r));
    }
  }
  PEBBLETC_CHECK(results.size() == 1) << "generation stack imbalance";
  tree.SetRoot(results.back());
  return tree;
}

}  // namespace pebbletc
