#include "src/tree/encode.h"

#include <string>
#include <utility>
#include <vector>

namespace pebbletc {

Result<BinaryTree> EncodeTree(const UnrankedTree& tree,
                              const EncodedAlphabet& enc,
                              std::vector<NodeId>* node_map,
                              std::pmr::memory_resource* mem) {
  if (tree.empty()) return Status::InvalidArgument("cannot encode empty tree");
  BinaryTree out = mem != nullptr ? BinaryTree(mem) : BinaryTree();

  // Iterative post-order: encoded[u] is the binary node encoding the unranked
  // subtree rooted at u.
  std::vector<NodeId> encoded(tree.size(), kNoNode);
  struct Frame {
    NodeId node;
    bool expanded;
  };
  std::vector<Frame> stack = {{tree.root(), false}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (tree.tag(f.node) >= enc.tag_symbol.size()) {
      return Status::InvalidArgument("tag id " +
                                     std::to_string(tree.tag(f.node)) +
                                     " outside the encoded alphabet");
    }
    const auto& kids = tree.children(f.node);
    if (!f.expanded && !kids.empty()) {
      stack.push_back({f.node, true});
      for (NodeId c : kids) stack.push_back({c, false});
      continue;
    }
    const SymbolId tag_sym = enc.tag_symbol[tree.tag(f.node)];
    if (kids.empty()) {
      // encode(a()) = a(|, |)
      NodeId l = out.AddLeaf(enc.nil);
      NodeId r = out.AddLeaf(enc.nil);
      encoded[f.node] = out.AddInternal(tag_sym, l, r);
    } else {
      // Fold the children right-to-left into a `-` spine; a singleton forest
      // is encoded without a cons node.
      NodeId forest = encoded[kids.back()];
      for (size_t i = kids.size() - 1; i-- > 0;) {
        forest = out.AddInternal(enc.cons, encoded[kids[i]], forest);
      }
      NodeId r = out.AddLeaf(enc.nil);
      encoded[f.node] = out.AddInternal(tag_sym, forest, r);
    }
  }
  out.SetRoot(encoded[tree.root()]);
  if (node_map != nullptr) *node_map = encoded;
  return out;
}

namespace {

// Collects the encoded trees making up the forest rooted at `n`: follows the
// `-` spine, emitting each head. `n` must not be a nil leaf.
Status CollectForest(const BinaryTree& tree, const EncodedAlphabet& enc,
                     NodeId n, std::vector<NodeId>* heads) {
  while (true) {
    SymbolId sym = tree.symbol(n);
    if (sym == enc.nil) {
      return Status::InvalidArgument("'|' appears inside a forest spine");
    }
    if (sym == enc.cons) {
      NodeId head = tree.left(n);
      if (tree.symbol(head) == enc.cons || tree.symbol(head) == enc.nil) {
        return Status::InvalidArgument(
            "left child of '-' must be a tag node");
      }
      heads->push_back(head);
      n = tree.right(n);
      continue;
    }
    // A tag node terminates the spine as the last tree of the forest.
    heads->push_back(n);
    return Status::OK();
  }
}

}  // namespace

Result<UnrankedTree> DecodeTree(const BinaryTree& tree,
                                const EncodedAlphabet& enc) {
  if (tree.empty()) return Status::InvalidArgument("cannot decode empty tree");
  UnrankedTree out;

  // Iterative post-order over tag nodes. decoded[b] is the unranked node for
  // the tag node b.
  std::vector<NodeId> decoded(tree.size(), kNoNode);
  struct Frame {
    NodeId node;              // a tag node in the binary tree
    bool expanded;
    std::vector<NodeId> kids;  // tag-node heads of its forest
  };
  std::vector<Frame> stack;
  {
    SymbolId s = tree.symbol(tree.root());
    if (s == enc.cons || s == enc.nil) {
      return Status::InvalidArgument("encoded root must be a tag node");
    }
    stack.push_back({tree.root(), false, {}});
  }
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (!f.expanded) {
      f.expanded = true;
      NodeId n = f.node;
      SymbolId sym = tree.symbol(n);
      SymbolId tag = enc.TagOf(sym);
      if (tag == kNoSymbol) {
        return Status::InvalidArgument("expected tag node, found '" +
                                       enc.ranked.Name(sym) + "'");
      }
      if (tree.IsLeaf(n)) {
        return Status::InvalidArgument("tag node '" + enc.ranked.Name(sym) +
                                       "' is a leaf in the encoding");
      }
      if (tree.symbol(tree.right(n)) != enc.nil) {
        return Status::InvalidArgument(
            "right child of tag node must be '|'");
      }
      if (!tree.IsLeaf(tree.right(n))) {
        return Status::InvalidArgument("'|' node must be a leaf");
      }
      NodeId l = tree.left(n);
      if (tree.symbol(l) == enc.nil) {
        if (!tree.IsLeaf(l)) {
          return Status::InvalidArgument("'|' node must be a leaf");
        }
        // No children.
      } else {
        PEBBLETC_RETURN_IF_ERROR(CollectForest(tree, enc, l, &f.kids));
        // Process children first. Copy the list before pushing: push_back may
        // reallocate the stack and invalidate `f`.
        std::vector<NodeId> kids = f.kids;
        for (size_t i = kids.size(); i-- > 0;) {
          stack.push_back({kids[i], false, {}});
        }
        continue;
      }
    }
    // All children decoded (or none); emit this node.
    Frame done = std::move(stack.back());
    stack.pop_back();
    std::vector<NodeId> child_nodes;
    child_nodes.reserve(done.kids.size());
    for (NodeId k : done.kids) {
      PEBBLETC_CHECK(decoded[k] != kNoNode) << "child not yet decoded";
      child_nodes.push_back(decoded[k]);
    }
    SymbolId tag = enc.TagOf(tree.symbol(done.node));
    decoded[done.node] = out.AddNode(tag, std::move(child_nodes));
  }
  out.SetRoot(decoded[tree.root()]);
  return out;
}

}  // namespace pebbletc
