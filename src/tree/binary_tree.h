// Arena-backed complete binary trees over a ranked alphabet (Section 2.1).
//
// Nodes are created bottom-up (children before parents) and addressed by
// dense NodeId. Every node labelled with a Σ0 symbol is a leaf; every node
// labelled with a Σ2 symbol has exactly two children. Parent pointers are
// maintained so pebble transducers can walk up as well as down.

#ifndef PEBBLETC_TREE_BINARY_TREE_H_
#define PEBBLETC_TREE_BINARY_TREE_H_

#include <cstdint>
#include <memory_resource>
#include <string>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/check.h"
#include "src/common/status.h"

namespace pebbletc {

/// Dense index of a node within its tree.
using NodeId = uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// A complete binary tree. The tree does not own its alphabet; symbol ids are
/// interpreted by whichever RankedAlphabet the caller pairs it with.
class BinaryTree {
 public:
  BinaryTree() = default;

  /// Arena-backed construction (docs/VALIDATION.md): every node vector lives
  /// in `mem`, so a request-scoped tree is freed in O(1) by the arena reset.
  /// Copying an arena-backed tree yields a default-heap tree (pmr copy
  /// semantics); moving keeps the resource.
  explicit BinaryTree(std::pmr::memory_resource* mem)
      : symbols_(mem), left_(mem), right_(mem), parent_(mem) {}

  /// Appends a leaf node labelled `symbol` and returns its id.
  NodeId AddLeaf(SymbolId symbol);

  /// Appends an internal node labelled `symbol` with the given children and
  /// returns its id. Children must already exist and must not already have a
  /// parent.
  NodeId AddInternal(SymbolId symbol, NodeId left, NodeId right);

  /// Declares `root` to be the root of the tree.
  void SetRoot(NodeId root);

  NodeId root() const { return root_; }
  size_t size() const { return symbols_.size(); }
  bool empty() const { return symbols_.empty(); }

  SymbolId symbol(NodeId n) const { return At(symbols_, n); }
  NodeId left(NodeId n) const { return At(left_, n); }
  NodeId right(NodeId n) const { return At(right_, n); }
  NodeId parent(NodeId n) const { return At(parent_, n); }
  bool IsLeaf(NodeId n) const { return left(n) == kNoNode; }
  bool IsRoot(NodeId n) const { return n == root_; }

  /// True if `n` is the left child of its parent. `n` must not be the root.
  bool IsLeftChild(NodeId n) const {
    PEBBLETC_CHECK(parent(n) != kNoNode) << "IsLeftChild on root";
    return left(parent(n)) == n;
  }

  /// Checks structural well-formedness: a root is set, every node is
  /// reachable from the root exactly once, parent links are consistent, and
  /// ranks match `alphabet` (leaves carry Σ0 symbols, internal nodes Σ2).
  Status Validate(const RankedAlphabet& alphabet) const;

  /// Structural equality of the subtrees rooted at `a` (in `ta`) and `b`
  /// (in `tb`).
  static bool SubtreeEquals(const BinaryTree& ta, NodeId a, const BinaryTree& tb,
                            NodeId b);

  /// Structural equality of whole trees.
  friend bool operator==(const BinaryTree& a, const BinaryTree& b) {
    if (a.empty() != b.empty()) return false;
    if (a.empty()) return true;
    return SubtreeEquals(a, a.root(), b, b.root());
  }

  /// Number of nodes in the subtree rooted at `n`.
  size_t SubtreeSize(NodeId n) const;

  /// Depth of the tree (a single node has depth 1); 0 for the empty tree.
  size_t Depth() const;

  /// Copies the subtree of `src` rooted at `src_node` into this tree,
  /// returning the id of the copied root (which has no parent yet).
  NodeId CopySubtree(const BinaryTree& src, NodeId src_node);

 private:
  template <typename T>
  const T& At(const std::pmr::vector<T>& v, NodeId n) const {
    PEBBLETC_CHECK(n < v.size()) << "invalid node id " << n;
    return v[n];
  }

  std::pmr::vector<SymbolId> symbols_;
  std::pmr::vector<NodeId> left_;
  std::pmr::vector<NodeId> right_;
  std::pmr::vector<NodeId> parent_;
  NodeId root_ = kNoNode;
};

}  // namespace pebbletc

#endif  // PEBBLETC_TREE_BINARY_TREE_H_
