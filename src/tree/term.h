// Textual term syntax for trees, used by tests, examples, and diagnostics.
//
//   unranked:  a(b, b, c(d), e)     — leaves may be written `b` or `b()`
//   binary:    a(-(b, c), |)       — arity must match the symbol's rank
//
// Symbol names are maximal runs of [A-Za-z0-9_] or the single-character
// symbols `-` and `|`.

#ifndef PEBBLETC_TREE_TERM_H_
#define PEBBLETC_TREE_TERM_H_

#include <string>
#include <string_view>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/tree/binary_tree.h"
#include "src/tree/unranked_tree.h"

namespace pebbletc {

/// Parses an unranked tree. New tags are interned into `*alphabet`.
Result<UnrankedTree> ParseUnrankedTerm(std::string_view text,
                                       Alphabet* alphabet);

/// Parses a binary tree over `alphabet`. All symbols must already exist in
/// `alphabet` and arities must match ranks.
Result<BinaryTree> ParseBinaryTerm(std::string_view text,
                                   const RankedAlphabet& alphabet);

/// Renders an unranked tree; inverse of ParseUnrankedTerm. Leaves print
/// without parentheses.
std::string UnrankedTermString(const UnrankedTree& tree,
                               const Alphabet& alphabet);

/// Renders a binary tree; inverse of ParseBinaryTerm.
std::string BinaryTermString(const BinaryTree& tree,
                             const RankedAlphabet& alphabet);

}  // namespace pebbletc

#endif  // PEBBLETC_TREE_TERM_H_
